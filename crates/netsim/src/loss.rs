//! Packet-loss processes.
//!
//! Sec 5 of the paper distinguishes three kinds of loss, all of which appear
//! in Fig 10:
//!
//! * a **random baseline** — small, evenly spread over time (FEC-fixable);
//! * **bursty loss** — large loss concentrated in a few seconds (routing
//!   convergence, transient congestion);
//! * **sustained congestion loss** — elevated loss across a whole session,
//!   diurnal, prevalent on under-provisioned links and residential edges.
//!
//! They are modelled respectively by [`LossModel::Bernoulli`], a
//! continuous-time Gilbert–Elliott chain ([`LossModel::GilbertElliott`]) and
//! a utilisation-coupled model ([`LossModel::Congestion`]) driven by a
//! [`DiurnalProfile`]. [`LossModel::Composite`] stacks them, which is how
//! link profiles in `vns-topo` are built.
//!
//! A [`LossModel`] is pure configuration; a [`LossProcess`] adds the mutable
//! state (chain state, fluctuation multiplier, RNG) that a single traffic
//! flow walks through time. Distinct flows over the same link get distinct
//! processes — we model loss correlation *within* a flow (bursts hit
//! back-to-back packets), not across flows.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::diurnal::DiurnalProfile;
use crate::time::{Dur, SimTime};

/// Loss-model configuration (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// Never loses a packet.
    None,
    /// Independent per-packet loss with probability `p`.
    Bernoulli {
        /// Per-packet loss probability.
        p: f64,
    },
    /// Two-state continuous-time Gilbert–Elliott chain. The chain spends
    /// exponential sojourns in Good/Bad; packets are dropped with
    /// `loss_good`/`loss_bad` depending on the state at send time.
    GilbertElliott {
        /// Good→Bad transition rate (events per second).
        g2b_per_sec: f64,
        /// Bad→Good transition rate (events per second).
        b2g_per_sec: f64,
        /// Per-packet loss probability in Good.
        loss_good: f64,
        /// Per-packet loss probability in Bad.
        loss_bad: f64,
    },
    /// Congestion loss: per-packet probability grows once utilisation
    /// exceeds the knee. Utilisation comes from the diurnal profile times a
    /// slowly resampled lognormal fluctuation (5-minute correlation), which
    /// produces lossy and clean slots rather than a constant drizzle.
    Congestion {
        /// Time-of-day utilisation curve of the link.
        profile: DiurnalProfile,
        /// Utilisation above which queues start dropping.
        knee: f64,
        /// Loss probability when utilisation reaches 1.0 (quadratic ramp
        /// from the knee).
        max_p: f64,
        /// Std-dev of the lognormal short-term fluctuation (0 disables).
        fluctuation_sigma: f64,
    },
    /// Independent stacked models; a packet survives only if it survives
    /// every component.
    Composite(Vec<LossModel>),
}

impl LossModel {
    /// Convenience: a bursty model with a target *long-run* loss rate.
    ///
    /// * `overall_rate` — stationary packet-loss fraction,
    /// * `loss_bad` — in-burst loss fraction (e.g. 0.3),
    /// * `mean_burst_secs` — average burst duration.
    ///
    /// The Good state is lossless; the chain's stationary Bad occupancy is
    /// chosen so `occupancy * loss_bad = overall_rate`.
    pub fn bursty(overall_rate: f64, loss_bad: f64, mean_burst_secs: f64) -> LossModel {
        assert!(
            overall_rate < loss_bad,
            "burst loss must exceed target rate"
        );
        assert!(mean_burst_secs > 0.0);
        let occupancy = overall_rate / loss_bad; // πB
        let b2g = 1.0 / mean_burst_secs;
        // πB = g2b / (g2b + b2g)  =>  g2b = b2g * πB / (1 - πB)
        let g2b = b2g * occupancy / (1.0 - occupancy);
        LossModel::GilbertElliott {
            g2b_per_sec: g2b,
            b2g_per_sec: b2g,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// Long-run mean per-packet loss probability (time-averaged over a day
    /// for congestion models). Used for calibration and tests; sampling a
    /// process converges to this.
    pub fn mean_rate(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                g2b_per_sec,
                b2g_per_sec,
                loss_good,
                loss_bad,
            } => {
                let total = g2b_per_sec + b2g_per_sec;
                if total <= 0.0 {
                    return *loss_good;
                }
                let pi_bad = g2b_per_sec / total;
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
            LossModel::Congestion {
                profile,
                knee,
                max_p,
                fluctuation_sigma,
            } => {
                // Average over the day AND over the lognormal short-term
                // fluctuation (16 quantile midpoints). The fluctuation is
                // what lets a link whose deterministic peak sits below the
                // knee still lose packets in bad five-minute windows, so
                // ignoring it would bias calibration to zero.
                let quantiles: &[f64] = if *fluctuation_sigma > 0.0 {
                    &STD_NORMAL_Q16
                } else {
                    &[0.0]
                };
                let n = 96;
                let mut acc = 0.0;
                for i in 0..n {
                    let u0 = profile.utilization_at_hour(24.0 * i as f64 / n as f64);
                    for &z in quantiles {
                        let fluct = (z * fluctuation_sigma
                            - 0.5 * fluctuation_sigma * fluctuation_sigma)
                            .exp();
                        acc += congestion_p((u0 * fluct).clamp(0.0, 1.0), *knee, *max_p);
                    }
                }
                acc / (n as f64 * quantiles.len() as f64)
            }
            LossModel::Composite(models) => {
                // Survival product under independence.
                1.0 - models.iter().map(|m| 1.0 - m.mean_rate()).product::<f64>()
            }
        }
    }
}

/// Midpoints of the 16 equal-probability bands of the standard normal
/// (z-scores at p = 1/32, 3/32, …, 31/32).
const STD_NORMAL_Q16: [f64; 16] = [
    -1.863, -1.318, -1.010, -0.776, -0.579, -0.402, -0.237, -0.078, 0.078, 0.237, 0.402, 0.579,
    0.776, 1.010, 1.318, 1.863,
];

/// Quadratic congestion ramp above the knee.
fn congestion_p(util: f64, knee: f64, max_p: f64) -> f64 {
    if util <= knee || knee >= 1.0 {
        0.0
    } else {
        let x = ((util - knee) / (1.0 - knee)).clamp(0.0, 1.0);
        max_p * x * x
    }
}

/// How often the congestion fluctuation multiplier is resampled.
const FLUCTUATION_PERIOD: Dur = Dur::from_secs(300);

/// Per-flow mutable state for one [`LossModel`].
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    rng: SmallRng,
    state: State,
}

#[derive(Debug, Clone)]
enum State {
    Stateless,
    Ge { bad: bool, last: SimTime },
    Congestion { fluct: f64, next_resample: SimTime },
    Composite(Vec<LossProcess>),
}

impl LossProcess {
    /// Creates a process for `model`, seeded by `rng`.
    pub fn new(model: LossModel, mut rng: SmallRng) -> Self {
        let state = match &model {
            LossModel::None | LossModel::Bernoulli { .. } => State::Stateless,
            LossModel::GilbertElliott {
                g2b_per_sec,
                b2g_per_sec,
                ..
            } => {
                // Start from the stationary distribution so early samples
                // are unbiased.
                let total = g2b_per_sec + b2g_per_sec;
                let pi_bad = if total > 0.0 {
                    g2b_per_sec / total
                } else {
                    0.0
                };
                State::Ge {
                    bad: rng.gen_bool(pi_bad.clamp(0.0, 1.0)),
                    last: SimTime::EPOCH,
                }
            }
            LossModel::Congestion { .. } => State::Congestion {
                fluct: 1.0,
                next_resample: SimTime::EPOCH,
            },
            LossModel::Composite(models) => {
                use rand::SeedableRng;
                let children = models
                    .iter()
                    .map(|m| {
                        let seed: u64 = rng.gen();
                        LossProcess::new(m.clone(), SmallRng::seed_from_u64(seed))
                    })
                    .collect();
                State::Composite(children)
            }
        };
        Self { model, rng, state }
    }

    /// Instantaneous per-packet loss probability at time `t`, evolving the
    /// internal state to `t` first.
    pub fn loss_prob(&mut self, t: SimTime) -> f64 {
        // Split borrows: state and rng are distinct fields.
        match (&self.model, &mut self.state) {
            (LossModel::None, _) => 0.0,
            (LossModel::Bernoulli { p }, _) => *p,
            (
                LossModel::GilbertElliott {
                    g2b_per_sec,
                    b2g_per_sec,
                    loss_good,
                    loss_bad,
                },
                State::Ge { bad, last },
            ) => {
                let dt = if t >= *last {
                    (t - *last).as_secs_f64()
                } else {
                    0.0
                };
                if dt > 0.0 {
                    // Closed-form 2-state CTMC transient: sample the state
                    // at t conditioned on the state at `last`.
                    let lam = *g2b_per_sec;
                    let mu = *b2g_per_sec;
                    let total = lam + mu;
                    if total > 0.0 {
                        let pi_bad = lam / total;
                        let decay = (-total * dt).exp();
                        let p_bad_now = if *bad {
                            pi_bad + (1.0 - pi_bad) * decay
                        } else {
                            pi_bad * (1.0 - decay)
                        };
                        *bad = self.rng.gen_bool(p_bad_now.clamp(0.0, 1.0));
                    }
                    *last = t;
                } else if t > *last {
                    *last = t;
                }
                if *bad {
                    *loss_bad
                } else {
                    *loss_good
                }
            }
            (
                LossModel::Congestion {
                    profile,
                    knee,
                    max_p,
                    fluctuation_sigma,
                },
                State::Congestion {
                    fluct,
                    next_resample,
                },
            ) => {
                if t >= *next_resample {
                    *fluct = if *fluctuation_sigma > 0.0 {
                        // Lognormal with mean ~1.
                        let z: f64 = sample_standard_normal(&mut self.rng);
                        (z * fluctuation_sigma - 0.5 * fluctuation_sigma * fluctuation_sigma).exp()
                    } else {
                        1.0
                    };
                    *next_resample = t + FLUCTUATION_PERIOD;
                }
                let util = (profile.utilization(t) * *fluct).clamp(0.0, 1.0);
                congestion_p(util, *knee, *max_p)
            }
            (LossModel::Composite(_), State::Composite(children)) => {
                let mut survive = 1.0;
                for c in children {
                    survive *= 1.0 - c.loss_prob(t);
                }
                1.0 - survive
            }
            _ => unreachable!("state/model mismatch is a construction bug"),
        }
    }

    /// Samples whether a packet sent at `t` is lost.
    pub fn packet_lost(&mut self, t: SimTime) -> bool {
        let p = self.loss_prob(t);
        p > 0.0 && self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples the geometric gap to the next loss for a span of packets
    /// with constant per-packet loss probability `p`: the returned count is
    /// how many packets *survive* before one is lost (0 means the next
    /// packet is lost). Distributionally equivalent to drawing `gen_bool(p)`
    /// per packet, at the cost of one `ln` per loss instead of one RNG
    /// draw per packet. Because the geometric distribution is memoryless,
    /// discarding an unexhausted gap and re-drawing (as the fast path does
    /// at every epoch boundary) does not bias the loss rate.
    pub fn gap_to_next_loss(&mut self, p: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = u.ln() / (1.0 - p).ln();
        if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &LossModel {
        &self.model
    }
}

/// Box–Muller standard normal (avoids pulling in rand_distr).
fn sample_standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalShape;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    fn sample_rate(model: LossModel, packets: u32, gap: Dur, seed: u64) -> f64 {
        let mut p = LossProcess::new(model, rng(seed));
        let mut t = SimTime::EPOCH;
        let mut lost = 0u32;
        for _ in 0..packets {
            if p.packet_lost(t) {
                lost += 1;
            }
            t += gap;
        }
        lost as f64 / packets as f64
    }

    #[test]
    fn none_never_loses() {
        assert_eq!(
            sample_rate(LossModel::None, 10_000, Dur::from_millis(1), 1),
            0.0
        );
    }

    #[test]
    fn bernoulli_converges() {
        let r = sample_rate(
            LossModel::Bernoulli { p: 0.02 },
            200_000,
            Dur::from_millis(1),
            2,
        );
        assert!((r - 0.02).abs() < 0.003, "rate {r}");
    }

    #[test]
    fn bursty_long_run_rate() {
        let model = LossModel::bursty(0.01, 0.4, 2.0);
        assert!((model.mean_rate() - 0.01).abs() < 1e-9);
        // Sample over many hours with 100 ms gaps.
        let r = sample_rate(model, 400_000, Dur::from_millis(100), 3);
        assert!((r - 0.01).abs() < 0.004, "rate {r}");
    }

    #[test]
    fn bursts_are_bursty() {
        // Back-to-back packets should see correlated loss: the variance of
        // per-window loss counts must exceed the Bernoulli prediction.
        let model = LossModel::bursty(0.02, 0.5, 2.0);
        let mut p = LossProcess::new(model, rng(4));
        let mut t = SimTime::EPOCH;
        let window = 1000usize;
        let mut counts = Vec::new();
        for _ in 0..200 {
            let mut lost = 0;
            for _ in 0..window {
                if p.packet_lost(t) {
                    lost += 1;
                }
                t += Dur::from_millis(2);
            }
            counts.push(lost as f64);
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        let bernoulli_var = mean * (1.0 - mean / window as f64);
        assert!(
            var > 3.0 * bernoulli_var,
            "var {var} should exceed Bernoulli {bernoulli_var}"
        );
    }

    #[test]
    fn congestion_loses_only_at_peak() {
        let profile = DiurnalProfile::new(DiurnalShape::Business, 0.3, 0.6, 0.0);
        let model = LossModel::Congestion {
            profile,
            knee: 0.7,
            max_p: 0.1,
            fluctuation_sigma: 0.0,
        };
        let mut p = LossProcess::new(model, rng(5));
        let night = SimTime::EPOCH + Dur::from_hours(3);
        let noon = SimTime::EPOCH + Dur::from_hours(13);
        assert_eq!(p.loss_prob(night), 0.0);
        assert!(p.loss_prob(noon) > 0.0);
    }

    #[test]
    fn congestion_fluctuation_creates_variation() {
        let profile = DiurnalProfile::flat(0.75);
        let model = LossModel::Congestion {
            profile,
            knee: 0.7,
            max_p: 0.2,
            fluctuation_sigma: 0.8,
        };
        let mut p = LossProcess::new(model, rng(6));
        let mut probs = Vec::new();
        for i in 0..200 {
            let t = SimTime::EPOCH + Dur::from_secs(301 * i);
            probs.push(p.loss_prob(t));
        }
        let zeros = probs.iter().filter(|&&x| x == 0.0).count();
        let positives = probs.iter().filter(|&&x| x > 0.0).count();
        assert!(zeros > 10, "fluctuation should create clean intervals");
        assert!(positives > 10, "and lossy intervals");
    }

    #[test]
    fn composite_stacks() {
        let m = LossModel::Composite(vec![
            LossModel::Bernoulli { p: 0.01 },
            LossModel::Bernoulli { p: 0.02 },
        ]);
        let expected = 1.0 - 0.99 * 0.98;
        assert!((m.mean_rate() - expected).abs() < 1e-12);
        let r = sample_rate(m, 200_000, Dur::from_millis(1), 7);
        assert!((r - expected).abs() < 0.003, "rate {r}");
    }

    #[test]
    fn gap_sampling_matches_bernoulli_rate() {
        // Consuming geometric gaps must reproduce the per-packet rate.
        for p in [0.001, 0.02, 0.3] {
            let mut proc = LossProcess::new(LossModel::Bernoulli { p }, rng(8));
            let n = 400_000u64;
            let mut lost = 0u64;
            let mut gap = proc.gap_to_next_loss(p);
            for _ in 0..n {
                if gap == 0 {
                    lost += 1;
                    gap = proc.gap_to_next_loss(p);
                } else {
                    gap -= 1;
                }
            }
            let rate = lost as f64 / n as f64;
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!((rate - p).abs() < 6.0 * sigma + 1e-5, "p {p} rate {rate}");
        }
    }

    #[test]
    fn gap_edge_cases() {
        let mut proc = LossProcess::new(LossModel::None, rng(9));
        assert_eq!(proc.gap_to_next_loss(0.0), u64::MAX);
        assert_eq!(proc.gap_to_next_loss(-1.0), u64::MAX);
        assert_eq!(proc.gap_to_next_loss(1.0), 0);
        assert_eq!(proc.gap_to_next_loss(2.0), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LossModel::bursty(0.05, 0.5, 1.0);
        let a = sample_rate(m.clone(), 10_000, Dur::from_millis(3), 11);
        let b = sample_rate(m, 10_000, Dur::from_millis(3), 11);
        assert_eq!(a, b);
    }
}
