//! Simulation clock.
//!
//! Time is a `u64` count of nanoseconds since the simulation epoch. The
//! epoch is defined to fall on midnight UTC so that calendar arithmetic
//! (hour-of-day, day index) is exact — the Fig 12 diurnal analysis buckets
//! loss events by CET hour.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time (non-negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// From minutes.
    pub const fn from_mins(m: u64) -> Self {
        Dur::from_secs(m * 60)
    }

    /// From hours.
    pub const fn from_hours(h: u64) -> Self {
        Dur::from_secs(h * 3600)
    }

    /// From days.
    pub const fn from_days(d: u64) -> Self {
        Dur::from_hours(d * 24)
    }

    /// From fractional milliseconds (the unit most delay math uses).
    /// Negative and non-finite inputs clamp to zero — a sampled delay can
    /// round below zero and must not wrap.
    ///
    /// Rounds half-up via `+0.5` and truncation rather than `f64::round`:
    /// the input is known non-negative here, the results agree, and the
    /// truncating cast is a single instruction on baseline x86-64 while
    /// `round` is a libm call (SSE4.1's `roundsd` is not in the default
    /// target). This sits on the per-hop path of the packet engine.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return Dur::ZERO;
        }
        Dur((ms * 1_000_000.0 + 0.5) as u64)
    }

    /// As nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating multiplication by an integer factor.
    pub const fn mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Checked division producing how many whole `step`s fit.
    pub const fn div_count(self, step: Dur) -> u64 {
        match self.0.checked_div(step.0) {
            Some(n) => n,
            None => 0,
        }
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the simulation clock (nanoseconds since epoch; the epoch
/// falls at midnight UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0, midnight UTC).
    pub const EPOCH: SimTime = SimTime(0);

    /// The far end of simulated time (used as an open upper bound for
    /// cached segments that extend past every scheduled event).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds since epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Whole seconds since epoch.
    pub const fn as_secs(&self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional hours since epoch.
    pub fn as_hours_f64(&self) -> f64 {
        self.0 as f64 / 3_600_000_000_000.0
    }

    /// UTC hour-of-day in `[0.0, 24.0)`.
    pub fn utc_hour(&self) -> f64 {
        self.as_hours_f64() % 24.0
    }

    /// Local hour-of-day in `[0.0, 24.0)` at a longitude-derived UTC offset
    /// (in hours, may be negative or fractional).
    pub fn local_hour(&self, utc_offset_hours: f64) -> f64 {
        ((self.utc_hour() + utc_offset_hours) % 24.0 + 24.0) % 24.0
    }

    /// Day index since epoch (UTC midnight boundaries).
    pub const fn day_index(&self) -> u64 {
        self.0 / 86_400_000_000_000
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics (debug) when `earlier` is later than `self`.
    pub fn since(&self, earlier: SimTime) -> Dur {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Index of the fixed-width telemetry window containing `self`.
    ///
    /// # Panics
    /// Panics (debug) on a zero-width window; release builds return 0.
    pub const fn window_index(&self, width: Dur) -> u64 {
        debug_assert!(width.0 > 0, "zero-width window");
        match self.0.checked_div(width.0) {
            Some(n) => n,
            None => 0,
        }
    }
}

/// A fixed-width **simulated-time** telemetry window.
///
/// Campaign telemetry buckets results by window; these are always windows
/// of the simulation clock, never of host wall time — mixing the two would
/// make artefacts depend on machine speed. Host `Instant` is reserved for
/// the bench perf ledger (wall-seconds of the run itself), which is the
/// only place it belongs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Window {
    /// Zero-based window index since the simulation epoch.
    pub index: u64,
    /// Window width.
    pub width: Dur,
}

impl Window {
    /// The window of width `width` containing instant `t`.
    pub const fn of(t: SimTime, width: Dur) -> Window {
        Window {
            index: t.window_index(width),
            width,
        }
    }

    /// Inclusive start of the window.
    pub const fn start(&self) -> SimTime {
        SimTime(self.width.0.saturating_mul(self.index))
    }

    /// Exclusive end of the window.
    pub const fn end(&self) -> SimTime {
        SimTime(self.width.0.saturating_mul(self.index + 1))
    }

    /// Whether instant `t` falls inside this window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start() <= t && t < self.end()
    }

    /// The next window.
    pub const fn next(&self) -> Window {
        Window {
            index: self.index + 1,
            width: self.width,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start(), self.end())
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day_index(),
            (s / 3600) % 24,
            (s / 60) % 60,
            s % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions() {
        assert_eq!(Dur::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Dur::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(Dur::from_days(1).div_count(Dur::from_hours(1)), 24);
        assert_eq!(Dur::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(Dur::from_millis_f64(-3.0), Dur::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::EPOCH + Dur::from_hours(25) + Dur::from_mins(30);
        assert_eq!(t.day_index(), 1);
        assert!((t.utc_hour() - 1.5).abs() < 1e-9);
        assert_eq!(
            t - (SimTime::EPOCH + Dur::from_hours(25)),
            Dur::from_mins(30)
        );
    }

    #[test]
    fn local_hour_wraps() {
        let t = SimTime::EPOCH + Dur::from_hours(23); // 23:00 UTC
        assert!((t.local_hour(2.0) - 1.0).abs() < 1e-9); // CET+2 ahead wraps
        assert!((t.local_hour(-25.0) - 22.0).abs() < 1e-9); // big negative offsets wrap too
    }

    #[test]
    fn display_formats() {
        let t = SimTime::EPOCH + Dur::from_hours(26) + Dur::from_secs(61);
        assert_eq!(t.to_string(), "d1+02:01:01");
        assert_eq!(Dur::from_millis(1500).to_string(), "1.500s");
        assert_eq!(Dur::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(Dur::from_nanos(12).to_string(), "12ns");
    }

    #[test]
    fn windows_partition_the_clock() {
        let w = Dur::from_mins(5);
        let t = SimTime::EPOCH + Dur::from_mins(12);
        let win = Window::of(t, w);
        assert_eq!(win.index, 2);
        assert_eq!(win.start(), SimTime::EPOCH + Dur::from_mins(10));
        assert_eq!(win.end(), SimTime::EPOCH + Dur::from_mins(15));
        assert!(win.contains(t));
        assert!(!win.contains(win.end()));
        assert!(win.next().contains(win.end()));
        assert_eq!(SimTime::EPOCH.window_index(w), 0);
        assert_eq!(win.to_string(), "[d0+00:10:00, d0+00:15:00)");
    }

    #[test]
    fn ordering() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(b.since(a), Dur::from_nanos(4));
    }
}
