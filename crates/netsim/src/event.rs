//! The event queue: a time-ordered priority queue with deterministic FIFO
//! tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant pop in insertion order (a
/// monotonically increasing sequence number breaks ties), which keeps runs
/// bit-for-bit reproducible regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
}

/// Wrapper that deliberately ignores the payload in comparisons so `E` does
/// not need `Ord`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let s = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, s, EventBox(event))));
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t0 = SimTime::EPOCH;
        q.schedule(t0 + Dur::from_millis(5), "b");
        q.schedule(t0 + Dur::from_millis(1), "a");
        q.schedule(t0 + Dur::from_millis(9), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::EPOCH + Dur::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
