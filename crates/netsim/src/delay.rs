//! Per-hop delay sampling: fixed propagation plus utilisation-dependent
//! queueing jitter.
//!
//! The paper reports jitter almost always under 10 ms (Sec 5.1.1) because
//! queueing delay on sane links is small compared to wide-area propagation.
//! We model per-packet one-way hop delay as
//!
//! `base + Exp(mean_queue(utilisation))`, capped at the hop's buffer bound,
//!
//! with `mean_queue` following the M/M/1-style `ρ/(1−ρ)` blow-up so jitter
//! and congestion loss rise together on hot links.

use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::diurnal::DiurnalProfile;
use crate::time::SimTime;

/// Bin-count exponent of the [`queue_draw`] piecewise-linear inverse
/// CDF: the top `EXP_BITS` bits of a draw select among `2^EXP_BITS` equal
/// probability bins.
const EXP_BITS: u32 = 11;
/// Number of inverse-CDF bins.
const EXP_BINS: usize = 1 << EXP_BITS;
/// Bins below this index (the deep tail, where `-ln` curves hardest and a
/// chord would err by >0.1%) fall back to the exact log.
const EXP_TAIL: usize = 16;

/// Lookup tables for the hot delay math: for [`fast_ln`], each of 256
/// mantissa bins' midpoint reciprocal `1/c` and exact `ln(c)`; for
/// [`queue_draw`], the `Exp(1)` inverse-CDF edge values `-ln(i/N)`.
#[derive(Debug)]
pub(crate) struct LnTables {
    inv: [f64; 256],
    lnc: [f64; 256],
    exp_edges: [f64; EXP_BINS + 1],
}

static LN_TABLES: OnceLock<LnTables> = OnceLock::new();

/// The shared delay tables (~20 KiB, built once, cache-resident under the
/// uniform access of the draw loops). Hot loops fetch this once per batch
/// and thread it through [`queue_draw`] so the per-packet path has no
/// atomic load.
pub(crate) fn ln_tables() -> &'static LnTables {
    LN_TABLES.get_or_init(|| {
        let mut inv = [0.0; 256];
        let mut lnc = [0.0; 256];
        for i in 0..256 {
            let c = 1.0 + (i as f64 + 0.5) / 256.0;
            inv[i] = 1.0 / c;
            lnc[i] = c.ln();
        }
        let mut exp_edges = [0.0; EXP_BINS + 1];
        for (i, e) in exp_edges.iter_mut().enumerate().skip(1) {
            *e = -((i as f64) / EXP_BINS as f64).ln();
        }
        // Edge 0 sits inside the exact-log fallback region and is never
        // interpolated against; any finite value works.
        exp_edges[0] = exp_edges[1];
        LnTables {
            inv,
            lnc,
            exp_edges,
        }
    })
}

/// Natural log of a positive normal `f64`, accurate to ~4e-12 absolute.
///
/// Splits `x = m·2^e` (`m ∈ [1,2)`), reduces `m` against the midpoint `c`
/// of its 256-wide mantissa bin (`r = m/c − 1`, `|r| < 2^-9`) and applies a
/// cubic `ln(1+r)` series — a table lookup and a handful of mul/adds
/// instead of a libm call, and the compiler can keep it in registers
/// inside the columnar delay loops. The error is parts-per-trillion of a
/// millisecond on sampled delays, far below every model tolerance.
#[inline]
pub(crate) fn fast_ln(t: &LnTables, x: f64) -> f64 {
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let i = ((bits >> 44) & 0xff) as usize;
    let r = m * t.inv[i] - 1.0;
    let ln_m = t.lnc[i] + r * (1.0 - r * (0.5 - r * (1.0 / 3.0)));
    (e as f64) * std::f64::consts::LN_2 + ln_m
}

/// Maps one raw `u64` draw onto the open interval `(0, 1)`: the 53 high
/// bits, low bit forced on so the result is never zero (and `fast_ln`
/// never sees it).
#[inline]
pub(crate) fn unit_open01_from(raw: u64) -> f64 {
    (((raw >> 11) | 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// One exponential queueing-delay draw: `min(−mean·ln(U), cap)`, via a
/// piecewise-linear inverse CDF. The top [`EXP_BITS`] bits of one
/// `next_u64` pick an equal-probability bin, the next 42 bits interpolate
/// between the bin's exact `-ln` edge values — a shift, two loads and a
/// handful of mul/adds per draw. The [`EXP_TAIL`] deepest-tail bins
/// (`U < 1/128`, where the chord error would exceed 0.1%) take the exact
/// [`fast_ln`] path instead, so the sampled distribution stays within
/// ~1e-4 relative of a true exponential everywhere and keeps the unbounded
/// tail (up to the buffer cap).
///
/// Unit-agnostic: `mean` and `cap` just need a consistent scale, and the
/// result comes back in that scale — the hot paths pass nanoseconds so the
/// per-packet ms→ns conversion disappears. This is the single definition
/// both the scalar and the batched send paths go through, so
/// fast/exact/batched modes consume the RNG identically (one `next_u64`
/// per draw) and produce bit-equal delays.
#[inline]
pub(crate) fn queue_draw(t: &LnTables, mean: f64, cap: f64, rng: &mut SmallRng) -> f64 {
    let r = rng.next_u64();
    let i = (r >> (64 - EXP_BITS)) as usize;
    if i >= EXP_TAIL {
        let frac = ((r >> 11) & ((1u64 << 42) - 1)) as f64 * (1.0 / (1u64 << 42) as f64);
        let a = t.exp_edges[i];
        let b = t.exp_edges[i + 1];
        (mean * (a + frac * (b - a))).min(cap)
    } else {
        (-mean * fast_ln(t, unit_open01_from(r))).min(cap)
    }
}

/// Samples one-way delay for packets crossing a hop.
#[derive(Debug, Clone)]
pub struct DelaySampler {
    /// Fixed component (propagation + serialisation + processing), ms.
    pub base_ms: f64,
    /// Utilisation curve driving the queueing component; `None` means an
    /// uncontended hop with a tiny fixed jitter floor.
    pub profile: Option<DiurnalProfile>,
    /// Queueing delay at 50% utilisation, ms (scales the ρ/(1−ρ) curve).
    pub queue_scale_ms: f64,
    /// Hard cap on the queueing component (finite buffers), ms.
    pub max_queue_ms: f64,
}

impl DelaySampler {
    /// An uncontended hop: fixed base delay and a hair of jitter.
    pub fn fixed(base_ms: f64) -> Self {
        Self {
            base_ms,
            profile: None,
            queue_scale_ms: 0.05,
            max_queue_ms: 0.5,
        }
    }

    /// A contended hop whose queueing tracks `profile`.
    pub fn contended(base_ms: f64, profile: DiurnalProfile) -> Self {
        Self {
            base_ms,
            profile: Some(profile),
            queue_scale_ms: 0.6,
            max_queue_ms: 40.0,
        }
    }

    /// Mean queueing delay at time `t`, ms.
    pub fn mean_queue_ms(&self, t: SimTime) -> f64 {
        match &self.profile {
            None => self.queue_scale_ms,
            Some(p) => {
                let rho = p.utilization(t).clamp(0.0, 0.99);
                // queue_scale_ms is the mean at rho = 0.5 where rho/(1-rho)=1.
                (self.queue_scale_ms * rho / (1.0 - rho)).min(self.max_queue_ms)
            }
        }
    }

    /// Samples a one-way delay in ms for a packet sent at `t`.
    pub fn sample_ms(&self, t: SimTime, rng: &mut SmallRng) -> f64 {
        self.sample_with_mean_ms(self.mean_queue_ms(t), rng)
    }

    /// Samples a one-way delay given a precomputed mean queueing delay.
    /// The fast path caches [`DelaySampler::mean_queue_ms`] per epoch (it
    /// walks the diurnal trig) and draws through this, which consumes the
    /// RNG exactly like [`DelaySampler::sample_ms`]: one `next_u64` per
    /// packet through `queue_draw`.
    pub fn sample_with_mean_ms(&self, mean_queue_ms: f64, rng: &mut SmallRng) -> f64 {
        self.base_ms + queue_draw(ln_tables(), mean_queue_ms, self.max_queue_ms, rng)
    }

    /// Samples a one-way delay in integer nanoseconds for a packet sent at
    /// `t` — the form the packet engine's clock arithmetic consumes. The
    /// whole computation runs in the nanosecond scale
    /// (`base·10⁶ + 0.5 + queue_draw(mean·10⁶, cap·10⁶)`, truncated), which
    /// is also exactly how the epoch-cached fast path assembles its delays,
    /// so exact and fast modes stay bit-equal on lossless hops.
    pub fn sample_ns(&self, t: SimTime, rng: &mut SmallRng) -> u64 {
        let mean_ns = self.mean_queue_ms(t) * 1_000_000.0;
        let q = queue_draw(ln_tables(), mean_ns, self.max_queue_ms * 1_000_000.0, rng);
        (self.base_ms * 1_000_000.0 + 0.5 + q) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalShape;
    use crate::time::Dur;
    use rand::SeedableRng;

    #[test]
    fn fixed_hop_close_to_base() {
        let s = DelaySampler::fixed(10.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = s.sample_ms(SimTime::EPOCH, &mut rng);
            assert!((10.0..=10.5 + 1e-9).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn contended_hop_peak_vs_trough() {
        let profile = DiurnalProfile::new(DiurnalShape::Business, 0.3, 0.6, 0.0);
        let s = DelaySampler::contended(5.0, profile);
        let noon = SimTime::EPOCH + Dur::from_hours(13);
        let night = SimTime::EPOCH + Dur::from_hours(3);
        assert!(s.mean_queue_ms(noon) > 3.0 * s.mean_queue_ms(night));
    }

    #[test]
    fn queue_capped() {
        let profile = DiurnalProfile::flat(0.99);
        let s = DelaySampler::contended(1.0, profile);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let d = s.sample_ms(SimTime::EPOCH, &mut rng);
            assert!(d <= 1.0 + 40.0 + 1e-9, "delay {d} exceeds buffer cap");
        }
    }

    #[test]
    fn fast_ln_matches_libm_ln() {
        let t = ln_tables();
        let mut rng = SmallRng::seed_from_u64(7);
        // Uniform draws as the sampler sees them, plus magnitudes far
        // outside (0,1) to pin the exponent handling.
        for _ in 0..100_000 {
            let u = unit_open01_from(rng.next_u64());
            assert!((fast_ln(t, u) - u.ln()).abs() < 1e-10, "u = {u}");
        }
        for x in [1e-300, 1e-9, 0.5, 1.0, 1.0 + 1e-12, 2.0, 3.7, 1e12] {
            assert!(
                (fast_ln(t, x) - x.ln()).abs() < 1e-9,
                "x = {x}: {} vs {}",
                fast_ln(t, x),
                x.ln()
            );
        }
    }

    #[test]
    fn queue_draw_tracks_exact_log() {
        // For the same raw draw, the interpolated branch must stay within
        // 2e-4 relative of the exact inverse CDF; the tail bins are exact
        // by construction (they run the fast_ln path on the same bits).
        let t = ln_tables();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200_000 {
            let mut peek = rng.clone();
            let raw = peek.next_u64();
            let q = queue_draw(t, 1.0, f64::INFINITY, &mut rng);
            let exact = -unit_open01_from(raw).ln();
            assert!(
                (q - exact).abs() <= 2e-4 * exact.max(1e-3),
                "q {q} vs exact {exact}"
            );
        }
    }

    #[test]
    fn unit_open01_stays_in_open_interval() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100_000 {
            let u = unit_open01_from(rng.next_u64());
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn mean_matches_exponential() {
        let profile = DiurnalProfile::flat(0.5);
        let s = DelaySampler::contended(0.0, profile);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| s.sample_ms(SimTime::EPOCH, &mut rng)).sum();
        let mean = sum / n as f64;
        // At rho=0.5 mean queue = queue_scale (0.6 ms); capping trims a bit.
        assert!((mean - 0.6).abs() < 0.03, "mean {mean}");
    }
}
