//! Per-hop delay sampling: fixed propagation plus utilisation-dependent
//! queueing jitter.
//!
//! The paper reports jitter almost always under 10 ms (Sec 5.1.1) because
//! queueing delay on sane links is small compared to wide-area propagation.
//! We model per-packet one-way hop delay as
//!
//! `base + Exp(mean_queue(utilisation))`, capped at the hop's buffer bound,
//!
//! with `mean_queue` following the M/M/1-style `ρ/(1−ρ)` blow-up so jitter
//! and congestion loss rise together on hot links.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::diurnal::DiurnalProfile;
use crate::time::SimTime;

/// Samples one-way delay for packets crossing a hop.
#[derive(Debug, Clone)]
pub struct DelaySampler {
    /// Fixed component (propagation + serialisation + processing), ms.
    pub base_ms: f64,
    /// Utilisation curve driving the queueing component; `None` means an
    /// uncontended hop with a tiny fixed jitter floor.
    pub profile: Option<DiurnalProfile>,
    /// Queueing delay at 50% utilisation, ms (scales the ρ/(1−ρ) curve).
    pub queue_scale_ms: f64,
    /// Hard cap on the queueing component (finite buffers), ms.
    pub max_queue_ms: f64,
}

impl DelaySampler {
    /// An uncontended hop: fixed base delay and a hair of jitter.
    pub fn fixed(base_ms: f64) -> Self {
        Self {
            base_ms,
            profile: None,
            queue_scale_ms: 0.05,
            max_queue_ms: 0.5,
        }
    }

    /// A contended hop whose queueing tracks `profile`.
    pub fn contended(base_ms: f64, profile: DiurnalProfile) -> Self {
        Self {
            base_ms,
            profile: Some(profile),
            queue_scale_ms: 0.6,
            max_queue_ms: 40.0,
        }
    }

    /// Mean queueing delay at time `t`, ms.
    pub fn mean_queue_ms(&self, t: SimTime) -> f64 {
        match &self.profile {
            None => self.queue_scale_ms,
            Some(p) => {
                let rho = p.utilization(t).clamp(0.0, 0.99);
                // queue_scale_ms is the mean at rho = 0.5 where rho/(1-rho)=1.
                (self.queue_scale_ms * rho / (1.0 - rho)).min(self.max_queue_ms)
            }
        }
    }

    /// Samples a one-way delay in ms for a packet sent at `t`.
    pub fn sample_ms(&self, t: SimTime, rng: &mut SmallRng) -> f64 {
        self.sample_with_mean_ms(self.mean_queue_ms(t), rng)
    }

    /// Samples a one-way delay given a precomputed mean queueing delay.
    /// The fast path caches [`DelaySampler::mean_queue_ms`] per epoch (it
    /// walks the diurnal trig) and draws through this, which consumes the
    /// RNG exactly like [`DelaySampler::sample_ms`].
    pub fn sample_with_mean_ms(&self, mean_queue_ms: f64, rng: &mut SmallRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let q = (-mean_queue_ms * u.ln()).min(self.max_queue_ms);
        self.base_ms + q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalShape;
    use crate::time::Dur;
    use rand::SeedableRng;

    #[test]
    fn fixed_hop_close_to_base() {
        let s = DelaySampler::fixed(10.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = s.sample_ms(SimTime::EPOCH, &mut rng);
            assert!((10.0..=10.5 + 1e-9).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn contended_hop_peak_vs_trough() {
        let profile = DiurnalProfile::new(DiurnalShape::Business, 0.3, 0.6, 0.0);
        let s = DelaySampler::contended(5.0, profile);
        let noon = SimTime::EPOCH + Dur::from_hours(13);
        let night = SimTime::EPOCH + Dur::from_hours(3);
        assert!(s.mean_queue_ms(noon) > 3.0 * s.mean_queue_ms(night));
    }

    #[test]
    fn queue_capped() {
        let profile = DiurnalProfile::flat(0.99);
        let s = DelaySampler::contended(1.0, profile);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let d = s.sample_ms(SimTime::EPOCH, &mut rng);
            assert!(d <= 1.0 + 40.0 + 1e-9, "delay {d} exceeds buffer cap");
        }
    }

    #[test]
    fn mean_matches_exponential() {
        let profile = DiurnalProfile::flat(0.5);
        let s = DelaySampler::contended(0.0, profile);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| s.sample_ms(SimTime::EPOCH, &mut rng)).sum();
        let mean = sum / n as f64;
        // At rho=0.5 mean queue = queue_scale (0.6 ms); capping trims a bit.
        assert!((mean - 0.6).abs() < 0.03, "mean {mean}");
    }
}
