//! Deterministic parallel execution for measurement campaigns.
//!
//! The campaigns of Secs 4–5 decompose into independent work units (a
//! probed prefix, a media-session arm, a (vantage, host) train series)
//! whose randomness is derived from `(master seed, unit label)` via
//! [`crate::RngTree`] rather than drawn from a shared walking RNG. That
//! makes each unit a pure function of the seed — so units can run on any
//! thread, in any order, and the campaign artefact is **byte-identical at
//! any thread count** as long as results are merged in canonical unit
//! order. [`par_map`] is that contract mechanised:
//!
//! * work units are claimed from an atomic cursor (no static sharding, so
//!   uneven units cannot idle a thread);
//! * each worker keeps `(index, result)` pairs privately — no shared
//!   mutable state, no locks on the hot path;
//! * results are merged by unit index after the scope joins, so the output
//!   is exactly `items.iter().map(f)` regardless of scheduling;
//! * a panicking unit panics `par_map` with the payload of the
//!   *lowest-index* panicking unit — the same unit a sequential `map`
//!   would have died on.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::ledger;

/// Work units processed by [`par_map`] so far, as visible to this thread
/// (see [`crate::ledger::units_processed`]). `vns-bench` samples it around
/// each experiment to report unit throughput in `BENCH_campaigns.json`.
pub fn units_processed() -> u64 {
    ledger::units_processed()
}

/// Parallelism configuration for a campaign run.
///
/// A resolved, always-valid thread count. The count never influences
/// results — only wall-clock — which is what the cross-thread
/// reproducibility suite in `crates/bench/tests/repro.rs` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Par {
    threads: NonZeroUsize,
}

impl Default for Par {
    fn default() -> Self {
        Par::auto()
    }
}

impl Par {
    /// One worker per available hardware thread.
    pub fn auto() -> Par {
        Par {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// Exactly `n` workers; `0` means [`Par::auto`].
    pub fn new(n: usize) -> Par {
        match NonZeroUsize::new(n) {
            Some(threads) => Par { threads },
            None => Par::auto(),
        }
    }

    /// Sequential execution (one worker, no threads spawned).
    pub fn seq() -> Par {
        Par {
            threads: NonZeroUsize::MIN,
        }
    }

    /// The worker count.
    pub fn threads(self) -> usize {
        self.threads.get()
    }

    /// [`par_map`] with this configuration.
    pub fn map<T, U, F>(self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        par_map(self, items, f)
    }
}

/// Maps `f` over `items` on up to `par.threads()` workers and returns the
/// results in input order — semantically `items.iter().enumerate().map(f)`,
/// including which unit's panic propagates (the lowest-index one).
///
/// `f` must be a pure function of `(index, item)` for the determinism
/// guarantee to extend to the *values*; `par_map` itself only guarantees
/// order and panic semantics.
///
/// # Panics
/// Re-raises the panic of the lowest-index panicking unit, exactly as the
/// sequential map would.
pub fn par_map<T, U, F>(par: Par, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = par.threads().min(items.len());
    if workers <= 1 {
        // Sequential fast path: no spawn cost, identical semantics. The
        // unit count lands in this thread's ledger cell directly.
        ledger::add_units(items.len() as u64);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    type Unit<U> = (usize, Result<U, Box<dyn std::any::Any + Send>>);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let mut done: Vec<Unit<U>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<Unit<U>> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    ledger::add_units(1);
                    local.push((i, catch_unwind(AssertUnwindSafe(|| f(i, item)))));
                }
                // Drain this worker's ledger cells (units claimed here plus
                // packets flushed by channels dropped inside the units);
                // the join point below merges the deltas in spawn order.
                (ledger::take_local(), local)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker did not itself panic"))
            .flat_map(|(delta, local)| {
                // Canonical-order merge: deltas fold into the process
                // totals in worker spawn order, one merge per worker.
                ledger::merge(delta);
                local
            })
            .collect()
    });
    done.sort_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in done {
        match r {
            Ok(v) => out.push(v),
            // First (lowest-index) failure wins, matching sequential map.
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map(Par::new(threads), &items, |_, x| x * x + 1);
            assert_eq!(par, seq, "threads {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Par::new(8), &[] as &[u32], |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn index_is_passed_through() {
        let items = ["a", "b", "c"];
        let out = par_map(Par::new(2), &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert_eq!(Par::new(0).threads(), Par::auto().threads());
        assert!(Par::auto().threads() >= 1);
    }

    #[test]
    fn lowest_index_panic_propagates() {
        let items: Vec<usize> = (0..100).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(Par::new(4), &items, |_, &x| {
                assert!(!(x == 17 || x == 63), "unit {x} failed");
                x
            })
        }));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("unit 17"), "got {msg}");
    }
}
