//! Diurnal utilisation profiles.
//!
//! Fig 12 of the paper shows loss frequency following the *destination*
//! region's clock (and, in AP, the local clock regardless of destination).
//! Congestion loss in this simulator is driven by link utilisation, and
//! utilisation follows one of these time-of-day profiles evaluated at the
//! link's local solar time.

use crate::time::SimTime;

/// Shape of the daily utilisation curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiurnalShape {
    /// No time-of-day structure (well-provisioned dedicated links).
    Flat,
    /// Business traffic: single broad peak across working hours (~09–17).
    Business,
    /// Residential traffic: evening peak (~19–23). Drives the CAHP loss
    /// peaks the paper attributes to home users.
    Residential,
    /// Both a working-hours and an evening component (transit links carrying
    /// a mix).
    Mixed,
}

/// A utilisation-over-time curve: `base + amplitude * shape(local hour)`,
/// clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalProfile {
    /// Curve shape.
    pub shape: DiurnalShape,
    /// Off-peak utilisation in `[0, 1]`.
    pub base: f64,
    /// Peak add-on in `[0, 1]`; peak utilisation is `base + amplitude`.
    pub amplitude: f64,
    /// UTC offset (hours) of the point whose local clock drives the curve.
    pub utc_offset_hours: f64,
}

/// Periodic bump centred at `centre` (hours) with characteristic width
/// `width` (hours); 1.0 at the centre, smoothly down to ~0 away from it.
/// Von-Mises-style so it wraps cleanly at midnight.
fn bump(hour: f64, centre: f64, width: f64) -> f64 {
    let k = (12.0 / width).powi(2) / 2.0;
    let phase = (hour - centre) * std::f64::consts::TAU / 24.0;
    (k * (phase.cos() - 1.0)).exp()
}

impl DiurnalShape {
    /// Shape value in `[0, 1]` at a local hour.
    pub fn value(&self, local_hour: f64) -> f64 {
        match self {
            DiurnalShape::Flat => 0.0,
            DiurnalShape::Business => bump(local_hour, 13.0, 4.5),
            DiurnalShape::Residential => bump(local_hour, 20.5, 3.0),
            DiurnalShape::Mixed => {
                (0.7 * bump(local_hour, 13.0, 4.5) + 0.6 * bump(local_hour, 20.5, 3.0)).min(1.0)
            }
        }
    }
}

impl DiurnalProfile {
    /// A flat profile at constant utilisation.
    pub fn flat(base: f64) -> Self {
        Self {
            shape: DiurnalShape::Flat,
            base,
            amplitude: 0.0,
            utc_offset_hours: 0.0,
        }
    }

    /// Builds a profile.
    pub fn new(shape: DiurnalShape, base: f64, amplitude: f64, utc_offset_hours: f64) -> Self {
        Self {
            shape,
            base,
            amplitude,
            utc_offset_hours,
        }
    }

    /// Utilisation in `[0, 1]` at simulation time `t`.
    pub fn utilization(&self, t: SimTime) -> f64 {
        let h = t.local_hour(self.utc_offset_hours);
        (self.base + self.amplitude * self.shape.value(h)).clamp(0.0, 1.0)
    }

    /// Utilisation at an explicit local hour (for tests and calibration).
    pub fn utilization_at_hour(&self, local_hour: f64) -> f64 {
        (self.base + self.amplitude * self.shape.value(local_hour)).clamp(0.0, 1.0)
    }

    /// Peak utilisation over the day (sampled).
    pub fn peak(&self) -> f64 {
        (0..96)
            .map(|i| self.utilization_at_hour(i as f64 / 4.0))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn flat_is_constant() {
        let p = DiurnalProfile::flat(0.3);
        for h in 0..24 {
            assert_eq!(p.utilization_at_hour(h as f64), 0.3);
        }
    }

    #[test]
    fn business_peaks_in_working_hours() {
        let p = DiurnalProfile::new(DiurnalShape::Business, 0.2, 0.5, 0.0);
        let noon = p.utilization_at_hour(13.0);
        let night = p.utilization_at_hour(3.0);
        assert!(noon > 0.65, "noon {noon}");
        assert!(night < 0.25, "night {night}");
    }

    #[test]
    fn residential_peaks_in_evening() {
        let p = DiurnalProfile::new(DiurnalShape::Residential, 0.2, 0.6, 0.0);
        assert!(p.utilization_at_hour(20.5) > p.utilization_at_hour(13.0));
        assert!(p.utilization_at_hour(20.5) > p.utilization_at_hour(4.0));
    }

    #[test]
    fn utc_offset_shifts_peak() {
        // Same instant, two offsets: in Singapore (UTC+7ish) 05:00 UTC is
        // noon; in San Jose (UTC-8) it is pre-dawn.
        let t = SimTime::EPOCH + Dur::from_hours(5);
        let sg = DiurnalProfile::new(DiurnalShape::Business, 0.1, 0.6, 7.0);
        let sj = DiurnalProfile::new(DiurnalShape::Business, 0.1, 0.6, -8.0);
        assert!(sg.utilization(t) > sj.utilization(t));
    }

    #[test]
    fn clamped_to_unit_interval() {
        let p = DiurnalProfile::new(DiurnalShape::Mixed, 0.8, 0.9, 0.0);
        for i in 0..96 {
            let u = p.utilization_at_hour(i as f64 / 4.0);
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn bump_wraps_midnight() {
        // A residential curve evaluated just before and after midnight must
        // be continuous.
        let p = DiurnalProfile::new(DiurnalShape::Residential, 0.0, 1.0, 0.0);
        let before = p.utilization_at_hour(23.99);
        let after = p.utilization_at_hour(0.01);
        assert!((before - after).abs() < 0.01);
    }

    #[test]
    fn peak_reports_max() {
        let p = DiurnalProfile::new(DiurnalShape::Business, 0.2, 0.5, 0.0);
        assert!((p.peak() - 0.7).abs() < 0.02);
    }
}
