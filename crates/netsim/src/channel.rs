//! A traffic flow's view of a multi-hop path.
//!
//! `vns-topo` resolves a (source, destination) pair to a sequence of hops;
//! this module turns that sequence into something probes and media streams
//! can push packets through: each hop has a loss process, a delay sampler
//! and an optional blackout schedule, and a packet either dies at some hop
//! or arrives after the summed one-way delay.

use rand::rngs::SmallRng;

use crate::delay::DelaySampler;
use crate::fault::BlackoutSchedule;
use crate::loss::LossProcess;
use crate::time::{Dur, SimTime};

/// One hop of a path, as seen by a single flow.
#[derive(Debug, Clone)]
pub struct HopChannel {
    /// Loss process (per-flow state).
    pub loss: LossProcess,
    /// Delay sampler.
    pub delay: DelaySampler,
    /// Blackout windows (shared schedule, e.g. convergence events on the
    /// underlying link).
    pub blackouts: BlackoutSchedule,
    /// Human-readable hop label for diagnostics (e.g. `"AS7018:Dallas->AS174:Chicago"`).
    pub label: String,
}

impl HopChannel {
    /// A lossless fixed-delay hop (useful in tests).
    pub fn ideal(base_ms: f64) -> Self {
        use crate::loss::LossModel;
        use rand::SeedableRng;
        Self {
            loss: LossProcess::new(LossModel::None, SmallRng::seed_from_u64(0)),
            delay: DelaySampler::fixed(base_ms),
            blackouts: BlackoutSchedule::none(),
            label: String::new(),
        }
    }
}

/// Outcome of sending one packet down a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathOutcome {
    /// Delivered; arrival instant and one-way delay.
    Delivered {
        /// Arrival time at the destination.
        arrival: SimTime,
        /// Accumulated one-way delay.
        delay: Dur,
    },
    /// Lost at hop `hop` (index into the path).
    Lost {
        /// Index of the hop that dropped the packet.
        hop: usize,
    },
}

impl PathOutcome {
    /// True when the packet arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, PathOutcome::Delivered { .. })
    }

    /// One-way delay in ms, `None` when lost.
    pub fn delay_ms(&self) -> Option<f64> {
        match self {
            PathOutcome::Delivered { delay, .. } => Some(delay.as_millis_f64()),
            PathOutcome::Lost { .. } => None,
        }
    }
}

/// A flow's multi-hop channel: owns per-hop state, shared by all packets of
/// the flow.
#[derive(Debug, Clone)]
pub struct PathChannel {
    hops: Vec<HopChannel>,
    rng: SmallRng,
}

impl PathChannel {
    /// Builds a channel from hops; `rng` drives the delay sampling.
    pub fn new(hops: Vec<HopChannel>, rng: SmallRng) -> Self {
        Self { hops, rng }
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Hop labels (diagnostics).
    pub fn labels(&self) -> Vec<&str> {
        self.hops.iter().map(|h| h.label.as_str()).collect()
    }

    /// Sends one packet at `sent`; the packet progresses hop by hop,
    /// accruing sampled delay, and may be dropped by any hop's loss process
    /// or blackout schedule.
    pub fn send(&mut self, sent: SimTime) -> PathOutcome {
        let mut now = sent;
        for (i, hop) in self.hops.iter_mut().enumerate() {
            if hop.blackouts.blacked_out(now) || hop.loss.packet_lost(now) {
                return PathOutcome::Lost { hop: i };
            }
            let d = Dur::from_millis_f64(hop.delay.sample_ms(now, &mut self.rng));
            now += d;
        }
        PathOutcome::Delivered {
            arrival: now,
            delay: now - sent,
        }
    }

    /// Minimum possible one-way delay (sum of hop bases), ms — what a probe
    /// of `n` packets converges to as its observed minimum.
    pub fn base_delay_ms(&self) -> f64 {
        self.hops.iter().map(|h| h.delay.base_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LossModel, LossProcess};
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn ideal_path_delivers_with_base_delay() {
        let mut ch = PathChannel::new(
            vec![HopChannel::ideal(10.0), HopChannel::ideal(20.0)],
            rng(1),
        );
        assert_eq!(ch.base_delay_ms(), 30.0);
        let out = ch.send(SimTime::EPOCH);
        let d = out.delay_ms().expect("delivered");
        assert!((30.0..31.5).contains(&d), "delay {d}");
    }

    #[test]
    fn lossy_hop_reports_index() {
        let mut hops = vec![HopChannel::ideal(1.0), HopChannel::ideal(1.0)];
        hops[1].loss = LossProcess::new(LossModel::Bernoulli { p: 1.0 }, rng(2));
        let mut ch = PathChannel::new(hops, rng(3));
        assert_eq!(ch.send(SimTime::EPOCH), PathOutcome::Lost { hop: 1 });
    }

    #[test]
    fn blackout_drops_everything_inside_window() {
        use crate::fault::BlackoutSchedule;
        let mut hop = HopChannel::ideal(1.0);
        let w0 = SimTime::EPOCH + Dur::from_secs(10);
        hop.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(5))]);
        let mut ch = PathChannel::new(vec![hop], rng(4));
        assert!(ch.send(SimTime::EPOCH).delivered());
        assert!(!ch.send(w0 + Dur::from_secs(1)).delivered());
        assert!(ch.send(w0 + Dur::from_secs(6)).delivered());
    }

    #[test]
    fn delay_accumulates_across_hops() {
        // A packet reaches hop 2 later than it was sent; blackout on hop 2
        // starting after send time can still drop it.
        let mut hop1 = HopChannel::ideal(1000.0); // 1 second
        hop1.label = "slow".into();
        let mut hop2 = HopChannel::ideal(1.0);
        let w0 = SimTime::EPOCH + Dur::from_millis(500);
        hop2.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(2))]);
        let mut ch = PathChannel::new(vec![hop1, hop2], rng(5));
        // Sent at t=0, arrives at hop2 at ~t=1s which is inside [0.5s, 2.5s).
        assert_eq!(ch.send(SimTime::EPOCH), PathOutcome::Lost { hop: 1 });
    }
}
