//! A traffic flow's view of a multi-hop path.
//!
//! `vns-topo` resolves a (source, destination) pair to a sequence of hops;
//! this module turns that sequence into something probes and media streams
//! can push packets through: each hop has a loss process, a delay sampler
//! and an optional blackout schedule, and a packet either dies at some hop
//! or arrives after the summed one-way delay.
//!
//! # The fast path
//!
//! A per-packet send costs, naively, per hop: a blackout binary search, a
//! loss-process state step (diurnal trig for congestion models), a loss
//! draw and an exponential delay draw. The quantities driving those are
//! slowly varying — the diurnal curve moves over hours, the congestion
//! fluctuation is resampled every five minutes — so [`PathChannel`]
//! quantises them per hop on a configurable sim-time **epoch** (default
//! [`DEFAULT_EPOCH`] = 1 s) into a `HopEpoch` snapshot:
//!
//! * the per-packet loss probability, frozen at the epoch start, with loss
//!   realised by **geometric gap sampling**
//!   ([`LossProcess::gap_to_next_loss`]) instead of a Bernoulli draw per
//!   packet;
//! * the mean queueing delay (the only trig consumer on the delay side);
//! * the blackout segment containing the current time — cached but
//!   **exact**: window edges bound segments, so membership answers never
//!   quantise (see [`BlackoutSchedule::segment_at`]).
//!
//! # The batch engine
//!
//! On top of the epoch cache, [`PathChannel::send_batch`] processes
//! structure-of-arrays blocks of up to [`BATCH_LEN`] send instants. The
//! live set is two plain columns — running clocks (`u64` nanoseconds) and
//! original batch indices — and each hop makes one pass over them. Within
//! a hop the engine detects **runs**: maximal stretches of consecutive
//! packets whose clocks fall inside the intersection of the cached epoch
//! and blackout segment. A blacked-out run is dropped wholesale; a live
//! run executes as a tight loop of one `next_u64`, one table-driven
//! log ([`crate::delay`]'s `fast_ln`), a multiply and a min per packet —
//! no branches on model state, nothing the compiler can't keep in
//! registers. Lost packets are compacted out of the columns in stable
//! order, which is what keeps the per-hop RNG and gap-counter consumption
//! identical to scalar [`PathChannel::send`]: each hop owns its delay RNG,
//! so hop-major batch order and packet-major scalar order consume every
//! stream identically and the two paths are **byte-equal** (pinned by
//! `tests/batch.rs`).
//!
//! Setting the epoch to [`Dur::ZERO`] (via [`PathChannel::exact`] or
//! [`PathChannel::set_epoch`]) disables all caching and reproduces the
//! original per-packet reference semantics — the equivalence proptests in
//! `tests/fastpath.rs` pin the fast path's loss/delay distributions
//! against it.
//!
//! Packet counts go to the per-thread [`crate::ledger`] (flushed on channel
//! drop), so the hot loop never touches a shared cache line.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::arena::BatchScratch;
use crate::delay::DelaySampler;
use crate::fault::BlackoutSchedule;
use crate::loss::LossProcess;
use crate::time::{Dur, SimTime};

/// Default epoch for the fast path: 1 s, far below the 5-minute congestion
/// fluctuation correlation and the hour-scale diurnal curve the loss and
/// delay models already assume.
pub const DEFAULT_EPOCH: Dur = Dur::from_secs(1);

/// Column width of the batch engine: [`PathChannel::send_many`] buffers
/// this many packets per [`PathChannel::send_batch`] call. Large enough to
/// amortise per-batch setup to noise, small enough that the scratch
/// columns stay L1/L2-resident.
pub const BATCH_LEN: usize = 1024;

/// Packets sent through [`PathChannel`]s, as visible to this thread (see
/// [`crate::ledger::packets_sent`]).
pub fn packets_sent() -> u64 {
    crate::ledger::packets_sent()
}

/// One hop of a path, as seen by a single flow.
#[derive(Debug, Clone)]
pub struct HopChannel {
    /// Loss process (per-flow state).
    pub loss: LossProcess,
    /// Delay sampler.
    pub delay: DelaySampler,
    /// Blackout windows (shared schedule, e.g. convergence events on the
    /// underlying link).
    pub blackouts: BlackoutSchedule,
    /// Human-readable hop label for diagnostics (e.g. `"AS7018:Dallas->AS174:Chicago"`).
    pub label: String,
}

impl HopChannel {
    /// A lossless fixed-delay hop (useful in tests).
    pub fn ideal(base_ms: f64) -> Self {
        use crate::loss::LossModel;
        Self {
            loss: LossProcess::new(LossModel::None, SmallRng::seed_from_u64(0)),
            delay: DelaySampler::fixed(base_ms),
            blackouts: BlackoutSchedule::none(),
            label: String::new(),
        }
    }
}

/// Outcome of sending one packet down a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathOutcome {
    /// Delivered; arrival instant and one-way delay.
    Delivered {
        /// Arrival time at the destination.
        arrival: SimTime,
        /// Accumulated one-way delay.
        delay: Dur,
    },
    /// Lost at hop `hop` (index into the path).
    Lost {
        /// Index of the hop that dropped the packet.
        hop: usize,
    },
}

impl PathOutcome {
    /// True when the packet arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, PathOutcome::Delivered { .. })
    }

    /// One-way delay in ms, `None` when lost.
    pub fn delay_ms(&self) -> Option<f64> {
        match self {
            PathOutcome::Delivered { delay, .. } => Some(delay.as_millis_f64()),
            PathOutcome::Lost { .. } => None,
        }
    }
}

/// Per-hop epoch snapshot: the slowly-varying quantities a packet consults,
/// frozen at the epoch start (see the module docs for what each caches).
#[derive(Debug, Clone)]
struct HopEpoch {
    /// Epoch validity `[valid_from, valid_until)`.
    valid_from: SimTime,
    valid_until: SimTime,
    /// Loss probability frozen at the epoch start.
    loss_p: f64,
    /// Packets that survive before the next loss (geometric gap).
    gap_left: u64,
    /// Mean queueing delay frozen at the epoch start, in nanoseconds (the
    /// scale the engine's clock arithmetic runs in).
    mean_queue_ns: f64,
    /// Cached blackout segment `[seg_lo, seg_hi)` — exact, not quantised.
    seg_lo: SimTime,
    seg_hi: SimTime,
    seg_blacked: bool,
}

impl HopEpoch {
    /// A snapshot no time falls into, forcing a refresh on first use.
    fn stale() -> Self {
        HopEpoch {
            valid_from: SimTime::MAX,
            valid_until: SimTime::EPOCH,
            loss_p: 0.0,
            gap_left: u64::MAX,
            mean_queue_ns: 0.0,
            seg_lo: SimTime::MAX,
            seg_hi: SimTime::EPOCH,
            seg_blacked: false,
        }
    }
}

/// Per-hop constants of the delay draw, hoisted out of the per-packet
/// loops into the nanosecond scale: the buffer cap, and the fixed base
/// with the half-up rounding term pre-added so a delay is one f64 add and
/// one truncating cast from its queue draw. Assembled identically by
/// [`DelaySampler::sample_ns`], which keeps exact and fast modes bit-equal.
#[derive(Clone, Copy)]
struct HopNs {
    cap_ns: f64,
    base_half_ns: f64,
}

impl HopNs {
    fn of(delay: &DelaySampler) -> Self {
        HopNs {
            cap_ns: delay.max_queue_ms * 1_000_000.0,
            base_half_ns: delay.base_ms * 1_000_000.0 + 0.5,
        }
    }
}

/// The innermost delay kernel: advances every clock in `run` by one
/// sampled hop delay, in place. Deliberately `inline(never)`: runs are
/// hundreds of packets long (one per epoch × blackout-segment intersection),
/// so the call is noise, while giving the loop its own frame keeps the
/// surrounding hop bookkeeping from spilling its registers — measured ~2×
/// on the per-packet cost over the inlined form.
#[inline(never)]
fn advance_run(
    run: &mut [u64],
    rng: &mut SmallRng,
    tables: &crate::delay::LnTables,
    mean_ns: f64,
    ns: HopNs,
) {
    for x in run.iter_mut() {
        let q = crate::delay::queue_draw(tables, mean_ns, ns.cap_ns, rng);
        *x += (ns.base_half_ns + q) as u64;
    }
}

/// Refreshes a hop's epoch snapshot for the epoch containing `now`.
fn refresh_epoch(hop: &mut HopChannel, ep: &mut HopEpoch, now: SimTime, epoch: Dur) {
    let e = epoch.as_nanos();
    let start = SimTime::from_nanos((now.as_nanos() / e) * e);
    ep.valid_from = start;
    ep.valid_until = start + epoch;
    ep.loss_p = hop.loss.loss_prob(start).clamp(0.0, 1.0);
    // Geometric gaps are memoryless: discarding the previous epoch's
    // unexhausted gap and re-drawing here preserves the loss distribution
    // even when loss_p did not change.
    ep.gap_left = hop.loss.gap_to_next_loss(ep.loss_p);
    ep.mean_queue_ns = hop.delay.mean_queue_ms(start) * 1_000_000.0;
}

/// Extracts the send instant from a batched-send item; lets
/// [`PathChannel::send_many`] drive on plain instants as well as richer
/// packet records (e.g. `vns-media`'s scheduled packets). `Copy` because
/// the batch engine buffers items by value in its scratch columns.
pub trait SendAt: Copy {
    /// When this item goes on the wire.
    fn send_at(&self) -> SimTime;
}

impl SendAt for SimTime {
    fn send_at(&self) -> SimTime {
        *self
    }
}

/// Batched-send iterator: pulls items in [`BATCH_LEN`] blocks, pushes each
/// block through [`PathChannel::send_batch`], and yields `(item, outcome)`
/// per input item. See [`PathChannel::send_many`].
#[derive(Debug)]
pub struct SendMany<'c, I: Iterator> {
    channel: &'c mut PathChannel,
    items: I,
    buf: Vec<I::Item>,
    scratch: crate::arena::Scratch,
    pos: usize,
}

impl<I> Iterator for SendMany<'_, I>
where
    I: Iterator,
    I::Item: SendAt,
{
    type Item = (I::Item, PathOutcome);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.scratch.times.clear();
            while self.buf.len() < BATCH_LEN {
                let Some(item) = self.items.next() else { break };
                self.scratch.times.push(item.send_at());
                self.buf.push(item);
            }
            if self.buf.is_empty() {
                return None;
            }
            self.pos = 0;
            self.channel.send_batch(&mut self.scratch);
        }
        let i = self.pos;
        self.pos += 1;
        Some((self.buf[i], self.scratch.outcomes[i]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.items.size_hint();
        let pending = self.buf.len() - self.pos;
        (
            lo.saturating_add(pending),
            hi.and_then(|h| h.checked_add(pending)),
        )
    }
}

/// A flow's multi-hop channel: owns per-hop state, shared by all packets of
/// the flow.
#[derive(Debug)]
pub struct PathChannel {
    hops: Vec<HopChannel>,
    /// One delay RNG per hop, seeded in hop order from the construction
    /// RNG. Hop-local streams are what let the batch engine process
    /// packets hop-major while consuming every stream in the exact order
    /// the scalar packet-major path does.
    delay_rngs: Vec<SmallRng>,
    /// Fast-path quantisation epoch; [`Dur::ZERO`] means exact per-packet
    /// evaluation (the reference path).
    epoch: Dur,
    cache: Vec<HopEpoch>,
    /// Locally counted packets, flushed to [`crate::ledger`] on drop.
    pending_count: u64,
}

impl Clone for PathChannel {
    fn clone(&self) -> Self {
        Self {
            hops: self.hops.clone(),
            delay_rngs: self.delay_rngs.clone(),
            epoch: self.epoch,
            cache: self.cache.clone(),
            // The clone has sent nothing yet; the original keeps (and will
            // flush) its own tally.
            pending_count: 0,
        }
    }
}

impl Drop for PathChannel {
    fn drop(&mut self) {
        if self.pending_count > 0 {
            crate::ledger::add_packets(self.pending_count);
        }
    }
}

impl PathChannel {
    /// Builds a fast-path channel (epoch [`DEFAULT_EPOCH`]); `rng` seeds
    /// the per-hop delay streams.
    pub fn new(hops: Vec<HopChannel>, rng: SmallRng) -> Self {
        Self::with_epoch(hops, rng, DEFAULT_EPOCH)
    }

    /// Builds an exact-mode channel: no epoch caching, every packet pays
    /// the full per-hop evaluation. The reference the fast path's
    /// equivalence tests pin against.
    pub fn exact(hops: Vec<HopChannel>, rng: SmallRng) -> Self {
        Self::with_epoch(hops, rng, Dur::ZERO)
    }

    /// Builds a channel with an explicit epoch ([`Dur::ZERO`] = exact).
    pub fn with_epoch(hops: Vec<HopChannel>, mut rng: SmallRng, epoch: Dur) -> Self {
        let cache = vec![HopEpoch::stale(); hops.len()];
        let delay_rngs = hops
            .iter()
            .map(|_| SmallRng::seed_from_u64(rng.next_u64()))
            .collect();
        Self {
            hops,
            delay_rngs,
            epoch,
            cache,
            pending_count: 0,
        }
    }

    /// The fast-path epoch ([`Dur::ZERO`] = exact mode).
    pub fn epoch(&self) -> Dur {
        self.epoch
    }

    /// Changes the epoch, invalidating all cached snapshots.
    pub fn set_epoch(&mut self, epoch: Dur) {
        self.epoch = epoch;
        for ep in &mut self.cache {
            *ep = HopEpoch::stale();
        }
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Hop labels (diagnostics).
    pub fn labels(&self) -> Vec<&str> {
        self.hops.iter().map(|h| h.label.as_str()).collect()
    }

    /// Sends one packet at `sent`; the packet progresses hop by hop,
    /// accruing sampled delay, and may be dropped by any hop's loss process
    /// or blackout schedule. Dispatches to the epoch-cached fast path
    /// unless the epoch is [`Dur::ZERO`]. Byte-equal to pushing the same
    /// instant through [`PathChannel::send_batch`].
    pub fn send(&mut self, sent: SimTime) -> PathOutcome {
        self.pending_count += 1;
        if self.epoch == Dur::ZERO {
            self.send_exact(sent)
        } else {
            self.send_fast(sent)
        }
    }

    /// Batched send: pulls items in [`BATCH_LEN`] blocks through
    /// [`PathChannel::send_batch`] and yields `(item, outcome)` pairs.
    /// `run_echo_session` and `loss_train` drive their packet trains
    /// through this; it is also the shape the criterion microbenches
    /// compare against per-call [`PathChannel::send`].
    pub fn send_many<I>(&mut self, items: I) -> SendMany<'_, I::IntoIter>
    where
        I: IntoIterator,
        I::Item: SendAt,
    {
        SendMany {
            channel: self,
            items: items.into_iter(),
            buf: Vec::new(),
            scratch: crate::arena::scratch(),
            pos: 0,
        }
    }

    /// Structure-of-arrays batched send: consumes `scratch.times` (the send
    /// instants, any length — processed in [`BATCH_LEN`] chunks) and fills
    /// `scratch.outcomes` with one outcome per instant, byte-equal to
    /// calling [`PathChannel::send`] on each instant in order. `scratch.now`
    /// and `scratch.idx` are the engine's internal live-set columns.
    pub fn send_batch(&mut self, scratch: &mut BatchScratch) {
        let BatchScratch {
            times,
            outcomes,
            now,
            idx,
            lost,
        } = scratch;
        let n = times.len();
        self.pending_count += n as u64;
        outcomes.clear();
        if self.epoch == Dur::ZERO {
            // Exact mode has no per-epoch structure to batch over; the
            // reference path runs per packet.
            for &t in times.iter() {
                let out = self.send_exact(t);
                outcomes.push(out);
            }
            return;
        }
        // Placeholder; every slot is overwritten exactly once below (the
        // loss column and the delivered set partition the chunk).
        outcomes.resize(n, PathOutcome::Lost { hop: usize::MAX });
        let mut start = 0;
        while start < n {
            let end = (start + BATCH_LEN).min(n);
            now.clear();
            now.extend(times[start..end].iter().map(|t| t.as_nanos()));
            idx.clear();
            lost.clear();
            let live = self.run_hops(now, idx, lost);
            let out = &mut outcomes[start..end];
            for &pk in lost.iter() {
                out[(pk >> 8) as usize] = PathOutcome::Lost {
                    hop: (pk & 0xff) as usize,
                };
            }
            if idx.is_empty() {
                // Identity mapping: nothing was dropped in this chunk.
                for (j, &clock) in now.iter().take(live).enumerate() {
                    let sent = times[start + j];
                    let arrival = SimTime::from_nanos(clock);
                    out[j] = PathOutcome::Delivered {
                        arrival,
                        delay: arrival - sent,
                    };
                }
            } else {
                for (&clock, &i) in now.iter().zip(idx.iter()).take(live) {
                    let sent = times[start + i as usize];
                    let arrival = SimTime::from_nanos(clock);
                    out[i as usize] = PathOutcome::Delivered {
                        arrival,
                        delay: arrival - sent,
                    };
                }
            }
            start = end;
        }
    }

    /// Columnar live-set send: consumes `scratch.times` (at most
    /// [`BATCH_LEN`] instants, in send order) and returns the delivered
    /// count `k`, leaving the results in the scratch columns — `now[0..k]`
    /// holds arrival clocks in ns, `idx` the original-index map (empty =
    /// identity: delivered slot `j` is original packet `j`), `lost` one
    /// packed `(original index << 8) | hop` entry per dropped packet.
    /// `outcomes` is untouched: no per-packet enum is materialised, which
    /// is what lets `run_echo_session` chain two legs with nothing but
    /// column reads. Consumes RNG and loss state exactly like
    /// [`PathChannel::send_batch`] over the same instants.
    pub fn send_batch_live(&mut self, scratch: &mut BatchScratch) -> usize {
        let BatchScratch {
            times,
            now,
            idx,
            lost,
            ..
        } = scratch;
        assert!(times.len() <= BATCH_LEN, "live-set sends are single-chunk");
        self.pending_count += times.len() as u64;
        now.clear();
        now.extend(times.iter().map(|t| t.as_nanos()));
        idx.clear();
        lost.clear();
        if self.epoch == Dur::ZERO {
            return self.run_exact_live(now, idx, lost);
        }
        self.run_hops(now, idx, lost)
    }

    /// [`PathChannel::send_batch_live`] with the send clocks given directly
    /// as a nanosecond column — e.g. the `now` column a previous leg's send
    /// left behind, which is exactly how the echo session feeds deliveries
    /// back without re-materialising `SimTime`s. `scratch.times` is ignored.
    pub fn send_batch_live_ns(&mut self, times_ns: &[u64], scratch: &mut BatchScratch) -> usize {
        let BatchScratch { now, idx, lost, .. } = scratch;
        assert!(
            times_ns.len() <= BATCH_LEN,
            "live-set sends are single-chunk"
        );
        self.pending_count += times_ns.len() as u64;
        now.clear();
        now.extend_from_slice(times_ns);
        idx.clear();
        lost.clear();
        if self.epoch == Dur::ZERO {
            return self.run_exact_live(now, idx, lost);
        }
        self.run_hops(now, idx, lost)
    }

    /// Exact-mode body of the live-set sends: per-packet reference
    /// evaluation, packed into the live-set column contract. Reads each
    /// input clock from `now` before overwriting the (always earlier)
    /// delivered prefix in place.
    fn run_exact_live(
        &mut self,
        now: &mut [u64],
        idx: &mut Vec<u32>,
        lost: &mut Vec<u32>,
    ) -> usize {
        debug_assert!(self.hops.len() < 256);
        let mut live = 0usize;
        for i in 0..now.len() {
            let t = SimTime::from_nanos(now[i]);
            match self.send_exact(t) {
                PathOutcome::Delivered { arrival, .. } => {
                    now[live] = arrival.as_nanos();
                    idx.push(i as u32);
                    live += 1;
                }
                PathOutcome::Lost { hop } => {
                    lost.push(((i as u32) << 8) | hop as u32);
                }
            }
        }
        live
    }

    /// The exact per-packet reference path (what `send` did before the
    /// epoch cache existed). Every hop pays the blackout binary search, the
    /// loss-process state step and draw, and the time-dependent delay
    /// sample.
    fn send_exact(&mut self, sent: SimTime) -> PathOutcome {
        let mut now = sent;
        for (i, (hop, rng)) in self
            .hops
            .iter_mut()
            .zip(self.delay_rngs.iter_mut())
            .enumerate()
        {
            if hop.blackouts.blacked_out(now) || hop.loss.packet_lost(now) {
                return PathOutcome::Lost { hop: i };
            }
            now += Dur::from_nanos(hop.delay.sample_ns(now, rng));
        }
        PathOutcome::Delivered {
            arrival: now,
            delay: now - sent,
        }
    }

    /// The epoch-cached fast path (see module docs). Blackout membership
    /// stays exact; loss probability and mean queue delay are frozen per
    /// epoch; loss is realised by geometric gap countdown.
    fn send_fast(&mut self, sent: SimTime) -> PathOutcome {
        let mut now = sent;
        let epoch = self.epoch;
        let tables = crate::delay::ln_tables();
        for (i, ((hop, ep), rng)) in self
            .hops
            .iter_mut()
            .zip(self.cache.iter_mut())
            .zip(self.delay_rngs.iter_mut())
            .enumerate()
        {
            // Blackouts first (mirrors the exact path's short-circuit: a
            // blacked-out packet consumes no loss draw). The cached segment
            // is exact — it is re-resolved whenever `now` leaves it, and
            // segments never span a window edge. Reverse-direction flows
            // can present non-monotonic times; the containment check
            // handles both directions.
            if now < ep.seg_lo || now >= ep.seg_hi {
                let (lo, hi, blacked) = hop.blackouts.segment_at(now);
                ep.seg_lo = lo;
                ep.seg_hi = hi;
                ep.seg_blacked = blacked;
            }
            if ep.seg_blacked {
                return PathOutcome::Lost { hop: i };
            }
            if now < ep.valid_from || now >= ep.valid_until {
                refresh_epoch(hop, ep, now, epoch);
            }
            if ep.loss_p > 0.0 {
                if ep.gap_left == 0 {
                    ep.gap_left = hop.loss.gap_to_next_loss(ep.loss_p);
                    return PathOutcome::Lost { hop: i };
                }
                ep.gap_left -= 1;
            }
            let ns = HopNs::of(&hop.delay);
            let q = crate::delay::queue_draw(tables, ep.mean_queue_ns, ns.cap_ns, rng);
            now += Dur::from_nanos((ns.base_half_ns + q) as u64);
        }
        PathOutcome::Delivered {
            arrival: now,
            delay: now - sent,
        }
    }

    /// One [`BATCH_LEN`]-bounded chunk of the columnar fast path: the hop
    /// passes over pre-filled live columns. On entry `now` holds the
    /// chunk's send clocks (ns, send order) and `idx`/`lost` are empty; on
    /// return the first `live` (returned) slots of `now` are arrival
    /// clocks, `idx` is the original-index map — left empty (identity)
    /// when no packet was dropped, materialised lazily on the first drop —
    /// and `lost` gained one `(orig << 8) | hop` entry per drop. The
    /// chunk cap keeps `orig` comfortably inside the packed 24 bits; hop
    /// indices must fit the low byte.
    fn run_hops(&mut self, now: &mut [u64], idx: &mut Vec<u32>, lost: &mut Vec<u32>) -> usize {
        debug_assert!(now.len() <= BATCH_LEN);
        debug_assert!(self.hops.len() < 256);
        debug_assert!(idx.is_empty());
        let n = now.len();
        let epoch = self.epoch;
        let tables = crate::delay::ln_tables();
        let mut live = n;
        for (h, ((hop, ep), rng)) in self
            .hops
            .iter_mut()
            .zip(self.cache.iter_mut())
            .zip(self.delay_rngs.iter_mut())
            .enumerate()
        {
            if live == 0 {
                break;
            }
            let ns = HopNs::of(&hop.delay);
            // Work on a local copy of the hop RNG so the run loops keep its
            // 32-byte state in registers instead of round-tripping the Vec
            // slot through memory on every draw; written back after the
            // hop's passes.
            let mut hop_rng = rng.clone();
            let mut w = 0usize; // write cursor: live packets kept so far
            let mut r = 0usize; // read cursor
            while r < live {
                let t = SimTime::from_nanos(now[r]);
                // Same per-packet resolution order as the scalar path:
                // segment containment, blackout short-circuit (no epoch
                // refresh, no loss draw), then epoch refresh.
                if t < ep.seg_lo || t >= ep.seg_hi {
                    let (lo, hi, blacked) = hop.blackouts.segment_at(t);
                    ep.seg_lo = lo;
                    ep.seg_hi = hi;
                    ep.seg_blacked = blacked;
                }
                if ep.seg_blacked {
                    if idx.is_empty() {
                        // First drop in the chunk: the mapping is still
                        // identity everywhere, so materialise it now.
                        idx.extend(0..n as u32);
                    }
                    let lo = ep.seg_lo.as_nanos();
                    let hi = ep.seg_hi.as_nanos();
                    while r < live && now[r] >= lo && now[r] < hi {
                        lost.push((idx[r] << 8) | h as u32);
                        r += 1;
                    }
                    continue;
                }
                if t < ep.valid_from || t >= ep.valid_until {
                    refresh_epoch(hop, ep, t, epoch);
                }
                // Run: consecutive packets inside both the epoch and the
                // (non-blacked) blackout segment share all cached state.
                let lo = ep.seg_lo.max(ep.valid_from).as_nanos();
                let hi = ep.seg_hi.min(ep.valid_until).as_nanos();
                let e = r
                    + 1
                    + now[r + 1..live]
                        .iter()
                        .position(|&x| x < lo || x >= hi)
                        .unwrap_or(live - r - 1);
                let mean = ep.mean_queue_ns;
                // A run survives wholesale when its loss gap outlasts it;
                // fold that case into the pure-delay path so lossy hops in
                // quiet epochs run the same tight loop as clean hops.
                let run_len = (e - r) as u64;
                let survives = ep.loss_p <= 0.0 || ep.gap_left >= run_len;
                if survives && w == r {
                    // Nothing has been compacted out of this hop yet, so
                    // clocks advance where they stand and `idx` is
                    // untouched: [`advance_run`] is one next_u64, one
                    // inverse-CDF interpolation, a multiply, a min and an
                    // in-place add per packet, with no bounds checks.
                    if ep.loss_p > 0.0 {
                        ep.gap_left -= run_len;
                    }
                    advance_run(&mut now[r..e], &mut hop_rng, tables, mean, ns);
                    w = e;
                } else if survives {
                    if ep.loss_p > 0.0 {
                        ep.gap_left -= run_len;
                    }
                    for j in r..e {
                        let q = crate::delay::queue_draw(tables, mean, ns.cap_ns, &mut hop_rng);
                        now[w] = now[j] + (ns.base_half_ns + q) as u64;
                        idx[w] = idx[j];
                        w += 1;
                    }
                } else {
                    if idx.is_empty() {
                        // As above: a loss is about to land in this run.
                        idx.extend(0..n as u32);
                    }
                    for j in r..e {
                        if ep.gap_left == 0 {
                            ep.gap_left = hop.loss.gap_to_next_loss(ep.loss_p);
                            lost.push((idx[j] << 8) | h as u32);
                        } else {
                            ep.gap_left -= 1;
                            let q = crate::delay::queue_draw(tables, mean, ns.cap_ns, &mut hop_rng);
                            now[w] = now[j] + (ns.base_half_ns + q) as u64;
                            idx[w] = idx[j];
                            w += 1;
                        }
                    }
                }
                r = e;
            }
            *rng = hop_rng;
            live = w;
        }
        live
    }

    /// Minimum possible one-way delay (sum of hop bases), ms — what a probe
    /// of `n` packets converges to as its observed minimum.
    pub fn base_delay_ms(&self) -> f64 {
        self.hops.iter().map(|h| h.delay.base_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LossModel, LossProcess};

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn ideal_path_delivers_with_base_delay() {
        let mut ch = PathChannel::new(
            vec![HopChannel::ideal(10.0), HopChannel::ideal(20.0)],
            rng(1),
        );
        assert_eq!(ch.base_delay_ms(), 30.0);
        let out = ch.send(SimTime::EPOCH);
        let d = out.delay_ms().expect("delivered");
        assert!((30.0..31.5).contains(&d), "delay {d}");
    }

    #[test]
    fn lossy_hop_reports_index() {
        let mut hops = vec![HopChannel::ideal(1.0), HopChannel::ideal(1.0)];
        hops[1].loss = LossProcess::new(LossModel::Bernoulli { p: 1.0 }, rng(2));
        let mut ch = PathChannel::new(hops, rng(3));
        assert_eq!(ch.send(SimTime::EPOCH), PathOutcome::Lost { hop: 1 });
    }

    #[test]
    fn blackout_drops_everything_inside_window() {
        use crate::fault::BlackoutSchedule;
        let mut hop = HopChannel::ideal(1.0);
        let w0 = SimTime::EPOCH + Dur::from_secs(10);
        hop.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(5))]);
        let mut ch = PathChannel::new(vec![hop], rng(4));
        assert!(ch.send(SimTime::EPOCH).delivered());
        assert!(!ch.send(w0 + Dur::from_secs(1)).delivered());
        assert!(ch.send(w0 + Dur::from_secs(6)).delivered());
    }

    #[test]
    fn delay_accumulates_across_hops() {
        // A packet reaches hop 2 later than it was sent; blackout on hop 2
        // starting after send time can still drop it.
        let mut hop1 = HopChannel::ideal(1000.0); // 1 second
        hop1.label = "slow".into();
        let mut hop2 = HopChannel::ideal(1.0);
        let w0 = SimTime::EPOCH + Dur::from_millis(500);
        hop2.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(2))]);
        let mut ch = PathChannel::new(vec![hop1, hop2], rng(5));
        // Sent at t=0, arrives at hop2 at ~t=1s which is inside [0.5s, 2.5s).
        assert_eq!(ch.send(SimTime::EPOCH), PathOutcome::Lost { hop: 1 });
    }

    #[test]
    fn lossless_fast_and_exact_paths_are_identical() {
        // With no loss process engaged, the fast path consumes the per-hop
        // delay RNGs exactly like the exact path — outcomes match bit for
        // bit.
        let hops = || vec![HopChannel::ideal(10.0), HopChannel::ideal(20.0)];
        let mut fast = PathChannel::new(hops(), rng(6));
        let mut exact = PathChannel::exact(hops(), rng(6));
        let mut t = SimTime::EPOCH;
        for _ in 0..5000 {
            assert_eq!(fast.send(t), exact.send(t));
            t += Dur::from_micros(700);
        }
    }

    #[test]
    fn send_many_matches_sequential_sends() {
        // send_many runs the columnar batch engine; per-call send runs the
        // scalar state machine. Same hops, same seed — byte-equal.
        let hops = || {
            let mut h = HopChannel::ideal(5.0);
            h.loss = LossProcess::new(LossModel::Bernoulli { p: 0.05 }, rng(7));
            vec![h]
        };
        let mut a = PathChannel::new(hops(), rng(8));
        let mut b = PathChannel::new(hops(), rng(8));
        let times: Vec<SimTime> = (0..2000u64)
            .map(|i| SimTime::EPOCH + Dur::from_micros(i * 100))
            .collect();
        let batched: Vec<PathOutcome> =
            a.send_many(times.iter().copied()).map(|(_, o)| o).collect();
        let seq: Vec<PathOutcome> = times.iter().map(|&t| b.send(t)).collect();
        assert_eq!(batched, seq);
    }

    #[test]
    fn set_epoch_invalidates_cache() {
        let mut ch = PathChannel::new(vec![HopChannel::ideal(1.0)], rng(9));
        assert_eq!(ch.epoch(), DEFAULT_EPOCH);
        let _ = ch.send(SimTime::EPOCH);
        ch.set_epoch(Dur::ZERO);
        assert_eq!(ch.epoch(), Dur::ZERO);
        assert!(ch.send(SimTime::EPOCH + Dur::from_secs(1)).delivered());
    }

    #[test]
    fn packet_counter_flushes_on_drop() {
        // The ledger keeps unmerged counts thread-local, so concurrently
        // running tests on other threads cannot skew this delta.
        let before = packets_sent();
        {
            let mut ch = PathChannel::new(vec![HopChannel::ideal(1.0)], rng(10));
            for i in 0..37u64 {
                let _ = ch.send(SimTime::EPOCH + Dur::from_millis(i));
            }
            // A clone must not double-count the original's tally.
            let clone = ch.clone();
            drop(clone);
        }
        assert_eq!(packets_sent() - before, 37);
    }

    #[test]
    fn send_batch_counts_packets() {
        let before = packets_sent();
        {
            let mut ch = PathChannel::new(vec![HopChannel::ideal(1.0)], rng(11));
            let mut s = crate::arena::scratch();
            s.times
                .extend((0..500u64).map(|i| SimTime::EPOCH + Dur::from_millis(i)));
            ch.send_batch(&mut s);
            assert_eq!(s.outcomes.len(), 500);
        }
        assert_eq!(packets_sent() - before, 500);
    }
}
