//! A traffic flow's view of a multi-hop path.
//!
//! `vns-topo` resolves a (source, destination) pair to a sequence of hops;
//! this module turns that sequence into something probes and media streams
//! can push packets through: each hop has a loss process, a delay sampler
//! and an optional blackout schedule, and a packet either dies at some hop
//! or arrives after the summed one-way delay.
//!
//! # The fast path
//!
//! A per-packet send costs, naively, per hop: a blackout binary search, a
//! loss-process state step (diurnal trig for congestion models), a loss
//! draw and an exponential delay draw. The quantities driving those are
//! slowly varying — the diurnal curve moves over hours, the congestion
//! fluctuation is resampled every five minutes — so [`PathChannel`]
//! quantises them per hop on a configurable sim-time **epoch** (default
//! [`DEFAULT_EPOCH`] = 1 s) into a `HopEpoch` snapshot:
//!
//! * the per-packet loss probability, frozen at the epoch start, with loss
//!   realised by **geometric gap sampling**
//!   ([`LossProcess::gap_to_next_loss`]) instead of a Bernoulli draw per
//!   packet;
//! * the mean queueing delay (the only trig consumer on the delay side);
//! * the blackout segment containing the current time — cached but
//!   **exact**: window edges bound segments, so membership answers never
//!   quantise (see [`BlackoutSchedule::segment_at`]).
//!
//! Steady-state per-packet cost is then two comparisons, a counter
//! decrement and one exponential delay draw. Setting the epoch to
//! [`Dur::ZERO`] (via [`PathChannel::exact`] or [`PathChannel::set_epoch`])
//! disables all caching and reproduces the original per-packet reference
//! semantics — the equivalence proptests in `tests/fastpath.rs` pin the
//! fast path's loss/delay distributions against it.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;

use crate::delay::DelaySampler;
use crate::fault::BlackoutSchedule;
use crate::loss::LossProcess;
use crate::time::{Dur, SimTime};

/// Default epoch for the fast path: 1 s, far below the 5-minute congestion
/// fluctuation correlation and the hour-scale diurnal curve the loss and
/// delay models already assume.
pub const DEFAULT_EPOCH: Dur = Dur::from_secs(1);

/// Total packets pushed through any [`PathChannel`] in this process.
/// `vns-bench` samples it around each experiment to report packet
/// throughput in `BENCH_campaigns.json`. Channels count locally and flush
/// on drop, so the hot loop never touches the shared cache line.
static PACKETS_SENT: AtomicU64 = AtomicU64::new(0);

/// Packets sent through [`PathChannel`]s so far in this process.
pub fn packets_sent() -> u64 {
    PACKETS_SENT.load(Ordering::Relaxed)
}

/// One hop of a path, as seen by a single flow.
#[derive(Debug, Clone)]
pub struct HopChannel {
    /// Loss process (per-flow state).
    pub loss: LossProcess,
    /// Delay sampler.
    pub delay: DelaySampler,
    /// Blackout windows (shared schedule, e.g. convergence events on the
    /// underlying link).
    pub blackouts: BlackoutSchedule,
    /// Human-readable hop label for diagnostics (e.g. `"AS7018:Dallas->AS174:Chicago"`).
    pub label: String,
}

impl HopChannel {
    /// A lossless fixed-delay hop (useful in tests).
    pub fn ideal(base_ms: f64) -> Self {
        use crate::loss::LossModel;
        use rand::SeedableRng;
        Self {
            loss: LossProcess::new(LossModel::None, SmallRng::seed_from_u64(0)),
            delay: DelaySampler::fixed(base_ms),
            blackouts: BlackoutSchedule::none(),
            label: String::new(),
        }
    }
}

/// Outcome of sending one packet down a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathOutcome {
    /// Delivered; arrival instant and one-way delay.
    Delivered {
        /// Arrival time at the destination.
        arrival: SimTime,
        /// Accumulated one-way delay.
        delay: Dur,
    },
    /// Lost at hop `hop` (index into the path).
    Lost {
        /// Index of the hop that dropped the packet.
        hop: usize,
    },
}

impl PathOutcome {
    /// True when the packet arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, PathOutcome::Delivered { .. })
    }

    /// One-way delay in ms, `None` when lost.
    pub fn delay_ms(&self) -> Option<f64> {
        match self {
            PathOutcome::Delivered { delay, .. } => Some(delay.as_millis_f64()),
            PathOutcome::Lost { .. } => None,
        }
    }
}

/// Per-hop epoch snapshot: the slowly-varying quantities a packet consults,
/// frozen at the epoch start (see the module docs for what each caches).
#[derive(Debug, Clone)]
struct HopEpoch {
    /// Epoch validity `[valid_from, valid_until)`.
    valid_from: SimTime,
    valid_until: SimTime,
    /// Loss probability frozen at the epoch start.
    loss_p: f64,
    /// Packets that survive before the next loss (geometric gap).
    gap_left: u64,
    /// Mean queueing delay frozen at the epoch start, ms.
    mean_queue_ms: f64,
    /// Cached blackout segment `[seg_lo, seg_hi)` — exact, not quantised.
    seg_lo: SimTime,
    seg_hi: SimTime,
    seg_blacked: bool,
}

impl HopEpoch {
    /// A snapshot no time falls into, forcing a refresh on first use.
    fn stale() -> Self {
        HopEpoch {
            valid_from: SimTime::MAX,
            valid_until: SimTime::EPOCH,
            loss_p: 0.0,
            gap_left: u64::MAX,
            mean_queue_ms: 0.0,
            seg_lo: SimTime::MAX,
            seg_hi: SimTime::EPOCH,
            seg_blacked: false,
        }
    }
}

/// Refreshes a hop's epoch snapshot for the epoch containing `now`.
fn refresh_epoch(hop: &mut HopChannel, ep: &mut HopEpoch, now: SimTime, epoch: Dur) {
    let e = epoch.as_nanos();
    let start = SimTime::from_nanos((now.as_nanos() / e) * e);
    ep.valid_from = start;
    ep.valid_until = start + epoch;
    ep.loss_p = hop.loss.loss_prob(start).clamp(0.0, 1.0);
    // Geometric gaps are memoryless: discarding the previous epoch's
    // unexhausted gap and re-drawing here preserves the loss distribution
    // even when loss_p did not change.
    ep.gap_left = hop.loss.gap_to_next_loss(ep.loss_p);
    ep.mean_queue_ms = hop.delay.mean_queue_ms(start);
}

/// Extracts the send instant from a batched-send item; lets
/// [`PathChannel::send_many`] drive on plain instants as well as richer
/// packet records (e.g. `vns-media`'s scheduled packets).
pub trait SendAt {
    /// When this item goes on the wire.
    fn send_at(&self) -> SimTime;
}

impl SendAt for SimTime {
    fn send_at(&self) -> SimTime {
        *self
    }
}

/// Lazy batched-send iterator: yields `(item, outcome)` per input item.
/// See [`PathChannel::send_many`].
#[derive(Debug)]
pub struct SendMany<'c, I> {
    channel: &'c mut PathChannel,
    items: I,
}

impl<I> Iterator for SendMany<'_, I>
where
    I: Iterator,
    I::Item: SendAt,
{
    type Item = (I::Item, PathOutcome);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.items.next()?;
        let outcome = self.channel.send(item.send_at());
        Some((item, outcome))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

/// A flow's multi-hop channel: owns per-hop state, shared by all packets of
/// the flow.
#[derive(Debug)]
pub struct PathChannel {
    hops: Vec<HopChannel>,
    rng: SmallRng,
    /// Fast-path quantisation epoch; [`Dur::ZERO`] means exact per-packet
    /// evaluation (the reference path).
    epoch: Dur,
    cache: Vec<HopEpoch>,
    /// Locally counted packets, flushed to [`PACKETS_SENT`] on drop.
    pending_count: u64,
}

impl Clone for PathChannel {
    fn clone(&self) -> Self {
        Self {
            hops: self.hops.clone(),
            rng: self.rng.clone(),
            epoch: self.epoch,
            cache: self.cache.clone(),
            // The clone has sent nothing yet; the original keeps (and will
            // flush) its own tally.
            pending_count: 0,
        }
    }
}

impl Drop for PathChannel {
    fn drop(&mut self) {
        if self.pending_count > 0 {
            PACKETS_SENT.fetch_add(self.pending_count, Ordering::Relaxed);
        }
    }
}

impl PathChannel {
    /// Builds a fast-path channel (epoch [`DEFAULT_EPOCH`]); `rng` drives
    /// the delay sampling.
    pub fn new(hops: Vec<HopChannel>, rng: SmallRng) -> Self {
        Self::with_epoch(hops, rng, DEFAULT_EPOCH)
    }

    /// Builds an exact-mode channel: no epoch caching, every packet pays
    /// the full per-hop evaluation. The reference the fast path's
    /// equivalence tests pin against.
    pub fn exact(hops: Vec<HopChannel>, rng: SmallRng) -> Self {
        Self::with_epoch(hops, rng, Dur::ZERO)
    }

    /// Builds a channel with an explicit epoch ([`Dur::ZERO`] = exact).
    pub fn with_epoch(hops: Vec<HopChannel>, rng: SmallRng, epoch: Dur) -> Self {
        let cache = vec![HopEpoch::stale(); hops.len()];
        Self {
            hops,
            rng,
            epoch,
            cache,
            pending_count: 0,
        }
    }

    /// The fast-path epoch ([`Dur::ZERO`] = exact mode).
    pub fn epoch(&self) -> Dur {
        self.epoch
    }

    /// Changes the epoch, invalidating all cached snapshots.
    pub fn set_epoch(&mut self, epoch: Dur) {
        self.epoch = epoch;
        for ep in &mut self.cache {
            *ep = HopEpoch::stale();
        }
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Hop labels (diagnostics).
    pub fn labels(&self) -> Vec<&str> {
        self.hops.iter().map(|h| h.label.as_str()).collect()
    }

    /// Sends one packet at `sent`; the packet progresses hop by hop,
    /// accruing sampled delay, and may be dropped by any hop's loss process
    /// or blackout schedule. Dispatches to the epoch-cached fast path
    /// unless the epoch is [`Dur::ZERO`].
    pub fn send(&mut self, sent: SimTime) -> PathOutcome {
        self.pending_count += 1;
        if self.epoch == Dur::ZERO {
            self.send_exact(sent)
        } else {
            self.send_fast(sent)
        }
    }

    /// Batched send: lazily pushes each item through the channel and yields
    /// `(item, outcome)` pairs. `run_echo_session` and `loss_train` drive
    /// their packet trains through this; it is also the natural shape for
    /// the criterion microbenches comparing per-call vs batched cost.
    pub fn send_many<I>(&mut self, items: I) -> SendMany<'_, I::IntoIter>
    where
        I: IntoIterator,
        I::Item: SendAt,
    {
        SendMany {
            channel: self,
            items: items.into_iter(),
        }
    }

    /// The exact per-packet reference path (what `send` did before the
    /// epoch cache existed). Every hop pays the blackout binary search, the
    /// loss-process state step and draw, and the time-dependent delay
    /// sample.
    fn send_exact(&mut self, sent: SimTime) -> PathOutcome {
        let mut now = sent;
        for (i, hop) in self.hops.iter_mut().enumerate() {
            if hop.blackouts.blacked_out(now) || hop.loss.packet_lost(now) {
                return PathOutcome::Lost { hop: i };
            }
            let d = Dur::from_millis_f64(hop.delay.sample_ms(now, &mut self.rng));
            now += d;
        }
        PathOutcome::Delivered {
            arrival: now,
            delay: now - sent,
        }
    }

    /// The epoch-cached fast path (see module docs). Blackout membership
    /// stays exact; loss probability and mean queue delay are frozen per
    /// epoch; loss is realised by geometric gap countdown.
    fn send_fast(&mut self, sent: SimTime) -> PathOutcome {
        let mut now = sent;
        let epoch = self.epoch;
        let rng = &mut self.rng;
        for (i, (hop, ep)) in self.hops.iter_mut().zip(self.cache.iter_mut()).enumerate() {
            // Blackouts first (mirrors the exact path's short-circuit: a
            // blacked-out packet consumes no loss draw). The cached segment
            // is exact — it is re-resolved whenever `now` leaves it, and
            // segments never span a window edge. Reverse-direction flows
            // can present non-monotonic times; the containment check
            // handles both directions.
            if now < ep.seg_lo || now >= ep.seg_hi {
                let (lo, hi, blacked) = hop.blackouts.segment_at(now);
                ep.seg_lo = lo;
                ep.seg_hi = hi;
                ep.seg_blacked = blacked;
            }
            if ep.seg_blacked {
                return PathOutcome::Lost { hop: i };
            }
            if now < ep.valid_from || now >= ep.valid_until {
                refresh_epoch(hop, ep, now, epoch);
            }
            if ep.loss_p > 0.0 {
                if ep.gap_left == 0 {
                    ep.gap_left = hop.loss.gap_to_next_loss(ep.loss_p);
                    return PathOutcome::Lost { hop: i };
                }
                ep.gap_left -= 1;
            }
            let d = Dur::from_millis_f64(hop.delay.sample_with_mean_ms(ep.mean_queue_ms, rng));
            now += d;
        }
        PathOutcome::Delivered {
            arrival: now,
            delay: now - sent,
        }
    }

    /// Minimum possible one-way delay (sum of hop bases), ms — what a probe
    /// of `n` packets converges to as its observed minimum.
    pub fn base_delay_ms(&self) -> f64 {
        self.hops.iter().map(|h| h.delay.base_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{LossModel, LossProcess};
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn ideal_path_delivers_with_base_delay() {
        let mut ch = PathChannel::new(
            vec![HopChannel::ideal(10.0), HopChannel::ideal(20.0)],
            rng(1),
        );
        assert_eq!(ch.base_delay_ms(), 30.0);
        let out = ch.send(SimTime::EPOCH);
        let d = out.delay_ms().expect("delivered");
        assert!((30.0..31.5).contains(&d), "delay {d}");
    }

    #[test]
    fn lossy_hop_reports_index() {
        let mut hops = vec![HopChannel::ideal(1.0), HopChannel::ideal(1.0)];
        hops[1].loss = LossProcess::new(LossModel::Bernoulli { p: 1.0 }, rng(2));
        let mut ch = PathChannel::new(hops, rng(3));
        assert_eq!(ch.send(SimTime::EPOCH), PathOutcome::Lost { hop: 1 });
    }

    #[test]
    fn blackout_drops_everything_inside_window() {
        use crate::fault::BlackoutSchedule;
        let mut hop = HopChannel::ideal(1.0);
        let w0 = SimTime::EPOCH + Dur::from_secs(10);
        hop.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(5))]);
        let mut ch = PathChannel::new(vec![hop], rng(4));
        assert!(ch.send(SimTime::EPOCH).delivered());
        assert!(!ch.send(w0 + Dur::from_secs(1)).delivered());
        assert!(ch.send(w0 + Dur::from_secs(6)).delivered());
    }

    #[test]
    fn delay_accumulates_across_hops() {
        // A packet reaches hop 2 later than it was sent; blackout on hop 2
        // starting after send time can still drop it.
        let mut hop1 = HopChannel::ideal(1000.0); // 1 second
        hop1.label = "slow".into();
        let mut hop2 = HopChannel::ideal(1.0);
        let w0 = SimTime::EPOCH + Dur::from_millis(500);
        hop2.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(2))]);
        let mut ch = PathChannel::new(vec![hop1, hop2], rng(5));
        // Sent at t=0, arrives at hop2 at ~t=1s which is inside [0.5s, 2.5s).
        assert_eq!(ch.send(SimTime::EPOCH), PathOutcome::Lost { hop: 1 });
    }

    #[test]
    fn lossless_fast_and_exact_paths_are_identical() {
        // With no loss process engaged, the fast path consumes the delay
        // RNG exactly like the exact path — outcomes match bit for bit.
        let hops = || vec![HopChannel::ideal(10.0), HopChannel::ideal(20.0)];
        let mut fast = PathChannel::new(hops(), rng(6));
        let mut exact = PathChannel::exact(hops(), rng(6));
        let mut t = SimTime::EPOCH;
        for _ in 0..5000 {
            assert_eq!(fast.send(t), exact.send(t));
            t += Dur::from_micros(700);
        }
    }

    #[test]
    fn send_many_matches_sequential_sends() {
        let hops = || {
            let mut h = HopChannel::ideal(5.0);
            h.loss = LossProcess::new(LossModel::Bernoulli { p: 0.05 }, rng(7));
            vec![h]
        };
        let mut a = PathChannel::new(hops(), rng(8));
        let mut b = PathChannel::new(hops(), rng(8));
        let times: Vec<SimTime> = (0..2000u64)
            .map(|i| SimTime::EPOCH + Dur::from_micros(i * 100))
            .collect();
        let batched: Vec<PathOutcome> =
            a.send_many(times.iter().copied()).map(|(_, o)| o).collect();
        let seq: Vec<PathOutcome> = times.iter().map(|&t| b.send(t)).collect();
        assert_eq!(batched, seq);
    }

    #[test]
    fn set_epoch_invalidates_cache() {
        let mut ch = PathChannel::new(vec![HopChannel::ideal(1.0)], rng(9));
        assert_eq!(ch.epoch(), DEFAULT_EPOCH);
        let _ = ch.send(SimTime::EPOCH);
        ch.set_epoch(Dur::ZERO);
        assert_eq!(ch.epoch(), Dur::ZERO);
        assert!(ch.send(SimTime::EPOCH + Dur::from_secs(1)).delivered());
    }

    #[test]
    fn packet_counter_flushes_on_drop() {
        let before = packets_sent();
        {
            let mut ch = PathChannel::new(vec![HopChannel::ideal(1.0)], rng(10));
            for i in 0..37u64 {
                let _ = ch.send(SimTime::EPOCH + Dur::from_millis(i));
            }
            // A clone must not double-count the original's tally.
            let clone = ch.clone();
            drop(clone);
        }
        assert_eq!(packets_sent() - before, 37);
    }
}
