//! Deterministic discrete-event network simulation substrate.
//!
//! The paper's evaluation ran on a production global network; this crate is
//! the laptop-scale stand-in. It provides the pieces every campaign needs:
//!
//! * [`SimTime`]/[`Dur`] — nanosecond simulation clock with calendar helpers
//!   (hour-of-day drives the diurnal congestion models of Fig 12);
//! * [`RngTree`] — a master seed fanned out into independent, reproducible
//!   per-component streams;
//! * [`EventQueue`]/[`Engine`] — a classic discrete-event loop with
//!   deterministic FIFO tie-breaking;
//! * [`DiurnalProfile`] — time-of-day utilisation curves (business,
//!   residential, flat) that shape congestion loss;
//! * [`LossModel`]/[`LossProcess`] — Bernoulli, Gilbert–Elliott bursty and
//!   congestion-coupled loss processes;
//! * [`Par`]/[`par_map`] — deterministic parallel map over independent
//!   campaign work units (byte-identical output at any thread count);
//! * [`DelaySampler`] — propagation + utilisation-dependent queueing delay;
//! * [`HopChannel`]/[`PathChannel`] — a packet's eye view of a multi-hop
//!   path, used by both the probing and media crates; `send_batch` is the
//!   columnar structure-of-arrays fast path;
//! * [`ledger`] — per-thread packet/unit throughput cells, merged in
//!   canonical worker order at `par_map` joins;
//! * [`arena`] — recycled per-thread scratch blocks backing the batch
//!   engine (no allocation on the steady-state session path);
//! * [`fault`] — scheduled blackout windows modelling routing-convergence
//!   events (the bursty-outlier cause in Fig 10);
//! * [`ArrivalProcess`] — windowed non-homogeneous Poisson call arrivals
//!   for the live service plane (rate shaped by a diurnal profile).
//!
//! Everything is deterministic given a master seed: no wall clock, no global
//! RNG, no iteration-order dependence.

pub mod arena;
pub mod arrivals;
pub mod channel;
pub mod delay;
pub mod diurnal;
pub mod engine;
pub mod event;
pub mod fault;
pub mod ledger;
pub mod loss;
pub mod par;
pub mod rng;
pub mod time;
pub mod trace;

pub use arena::{scratch, BatchScratch, Scratch};
pub use arrivals::ArrivalProcess;
pub use channel::{
    packets_sent, HopChannel, PathChannel, PathOutcome, SendAt, SendMany, BATCH_LEN, DEFAULT_EPOCH,
};
pub use delay::DelaySampler;
pub use diurnal::{DiurnalProfile, DiurnalShape};
pub use engine::Engine;
pub use event::EventQueue;
pub use fault::{BlackoutSchedule, FaultGenerator};
pub use ledger::LedgerDelta;
pub use loss::{LossModel, LossProcess};
pub use par::{par_map, Par};
pub use rng::RngTree;
pub use time::{Dur, SimTime, Window};
pub use trace::{Trace, TraceEvent};
