//! Fault injection: scheduled blackout windows.
//!
//! Fig 10's upper-left outliers — large loss concentrated in one or two
//! five-second slots — are attributed by the paper to IGP/BGP convergence
//! events: the path simply blackholes for a few seconds. A
//! [`BlackoutSchedule`] is a set of such windows on a hop; a
//! [`FaultGenerator`] draws them from a Poisson process.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::time::{Dur, SimTime};

/// A sorted, non-overlapping set of blackout windows. Packets sent inside a
/// window are lost with probability 1.
#[derive(Debug, Clone, Default)]
pub struct BlackoutSchedule {
    /// `(start, end)` pairs, sorted by start, non-overlapping.
    windows: Vec<(SimTime, SimTime)>,
}

impl BlackoutSchedule {
    /// An empty schedule (never blacked out).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds from windows, sorting and merging overlaps.
    pub fn new(mut windows: Vec<(SimTime, SimTime)>) -> Self {
        windows.retain(|(s, e)| e > s);
        windows.sort_by_key(|w| w.0);
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, last_e)) if s <= *last_e => {
                    if e > *last_e {
                        *last_e = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        Self { windows: merged }
    }

    /// Whether `t` falls inside a blackout window.
    pub fn blacked_out(&self, t: SimTime) -> bool {
        let idx = self.windows.partition_point(|(s, _)| *s <= t);
        idx > 0 && t < self.windows[idx - 1].1
    }

    /// The maximal segment `[lo, hi)` containing `t` on which membership is
    /// constant, plus whether that segment is blacked out. The fast path in
    /// [`crate::PathChannel`] caches the returned segment so steady-state
    /// packets answer the blackout question with two comparisons while
    /// staying *exact*: every window boundary starts a new segment, so the
    /// cache can never smear a window edge across an epoch.
    pub fn segment_at(&self, t: SimTime) -> (SimTime, SimTime, bool) {
        let idx = self.windows.partition_point(|(s, _)| *s <= t);
        if idx > 0 && t < self.windows[idx - 1].1 {
            let (s, e) = self.windows[idx - 1];
            return (s, e, true);
        }
        let lo = if idx > 0 {
            self.windows[idx - 1].1
        } else {
            SimTime::EPOCH
        };
        let hi = self.windows.get(idx).map_or(SimTime::MAX, |(s, _)| *s);
        (lo, hi, false)
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when there are no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total blacked-out time.
    pub fn total_duration(&self) -> Dur {
        self.windows
            .iter()
            .fold(Dur::ZERO, |acc, (s, e)| acc + (*e - *s))
    }
}

/// Draws blackout schedules from a Poisson process.
#[derive(Debug, Clone, Copy)]
pub struct FaultGenerator {
    /// Expected blackout events per simulated day.
    pub events_per_day: f64,
    /// Minimum blackout duration.
    pub min_duration: Dur,
    /// Maximum blackout duration (uniform between min and max — convergence
    /// events are seconds, not minutes).
    pub max_duration: Dur,
}

impl FaultGenerator {
    /// A generator for routing-convergence-style events: a couple of
    /// events/day lasting 1–8 seconds.
    pub fn convergence(events_per_day: f64) -> Self {
        Self {
            events_per_day,
            min_duration: Dur::from_secs(1),
            max_duration: Dur::from_secs(8),
        }
    }

    /// Generates a schedule covering `[start, start+horizon)`.
    pub fn generate(&self, start: SimTime, horizon: Dur, rng: &mut SmallRng) -> BlackoutSchedule {
        if self.events_per_day <= 0.0 {
            return BlackoutSchedule::none();
        }
        let mean_gap_secs = 86_400.0 / self.events_per_day;
        let end = start + horizon;
        let mut windows = Vec::new();
        let mut t = start;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = Dur::from_millis_f64(-mean_gap_secs * 1000.0 * u.ln());
            t += gap;
            if t >= end {
                break;
            }
            let lo = self.min_duration.as_nanos();
            let hi = self.max_duration.as_nanos().max(lo + 1);
            let dur = Dur::from_nanos(rng.gen_range(lo..hi));
            windows.push((t, t + dur));
        }
        BlackoutSchedule::new(windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(secs: u64) -> SimTime {
        SimTime::EPOCH + Dur::from_secs(secs)
    }

    #[test]
    fn membership() {
        let s = BlackoutSchedule::new(vec![(t(10), t(15)), (t(20), t(22))]);
        assert!(!s.blacked_out(t(9)));
        assert!(s.blacked_out(t(10)));
        assert!(s.blacked_out(t(14)));
        assert!(!s.blacked_out(t(15))); // half-open
        assert!(s.blacked_out(t(21)));
        assert!(!s.blacked_out(t(23)));
    }

    #[test]
    fn segments_partition_time_and_agree_with_membership() {
        let s = BlackoutSchedule::new(vec![(t(10), t(15)), (t(20), t(22))]);
        assert_eq!(s.segment_at(t(0)), (SimTime::EPOCH, t(10), false));
        assert_eq!(s.segment_at(t(10)), (t(10), t(15), true));
        assert_eq!(s.segment_at(t(14)), (t(10), t(15), true));
        assert_eq!(s.segment_at(t(15)), (t(15), t(20), false)); // half-open
        assert_eq!(s.segment_at(t(21)), (t(20), t(22), true));
        assert_eq!(s.segment_at(t(30)), (t(22), SimTime::MAX, false));
        // Empty schedule: one segment covering everything.
        let e = BlackoutSchedule::none();
        assert_eq!(e.segment_at(t(5)), (SimTime::EPOCH, SimTime::MAX, false));
        // Segment flag must agree with blacked_out at every probe point.
        for probe in 0..40 {
            let (lo, hi, black) = s.segment_at(t(probe));
            assert_eq!(black, s.blacked_out(t(probe)), "at {probe}");
            assert!(lo <= t(probe) && t(probe) < hi, "at {probe}");
        }
    }

    #[test]
    fn merges_overlaps() {
        let s = BlackoutSchedule::new(vec![(t(10), t(15)), (t(14), t(18)), (t(18), t(19))]);
        // [10,15) and [14,18) overlap; [18,19) is adjacent and also merges.
        assert_eq!(s.len(), 1);
        assert!(s.blacked_out(t(16)));
        assert_eq!(s.total_duration(), Dur::from_secs(9));
    }

    #[test]
    fn empty_windows_dropped() {
        let s = BlackoutSchedule::new(vec![(t(5), t(5)), (t(9), t(8))]);
        assert!(s.is_empty());
    }

    #[test]
    fn generator_rate_roughly_right() {
        let g = FaultGenerator::convergence(4.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let s = g.generate(SimTime::EPOCH, Dur::from_days(100), &mut rng);
        // ~400 events expected over 100 days.
        assert!((300..500).contains(&s.len()), "events {}", s.len());
        for w in 0..s.len() {
            let _ = w;
        }
    }

    #[test]
    fn generator_durations_bounded() {
        let g = FaultGenerator::convergence(10.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let s = g.generate(SimTime::EPOCH, Dur::from_days(10), &mut rng);
        assert!(!s.is_empty());
        // Total duration <= events * max_duration.
        assert!(s.total_duration().as_secs_f64() <= s.len() as f64 * 8.0 + 1e-9);
    }

    #[test]
    fn zero_rate_empty() {
        let g = FaultGenerator::convergence(0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(g
            .generate(SimTime::EPOCH, Dur::from_days(10), &mut rng)
            .is_empty());
    }
}
