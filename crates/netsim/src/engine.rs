//! A minimal discrete-event engine driving an [`EventQueue`].

use crate::event::EventQueue;
use crate::time::{Dur, SimTime};

/// The engine owns the clock and the queue; handlers schedule follow-up
/// events through the [`Context`] they receive.
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

/// Scheduling handle passed to event handlers.
#[derive(Debug)]
pub struct Context<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<E> Context<'_, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`.
    pub fn schedule_in(&mut self, delay: Dur, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at.max(self.now), event);
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at the epoch with an empty queue.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime::EPOCH,
            processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Seeds an initial event.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.schedule(at, event);
    }

    /// Runs until the queue drains or `until` is passed, dispatching each
    /// event to `handler`. Returns the number of events processed by this
    /// call.
    pub fn run_until<F>(&mut self, until: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Context<'_, E>, E),
    {
        let start = self.processed;
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            let mut ctx = Context {
                queue: &mut self.queue,
                now: t,
            };
            handler(&mut ctx, ev);
            self.processed += 1;
        }
        // Advance the clock to the horizon even if the queue drained early,
        // so repeated bounded runs see monotone time.
        if until > self.now {
            self.now = until;
        }
        self.processed - start
    }

    /// Runs until the queue is fully drained.
    pub fn run_to_completion<F>(&mut self, handler: F) -> u64
    where
        F: FnMut(&mut Context<'_, E>, E),
    {
        self.run_until(SimTime::from_nanos(u64::MAX), handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn cascading_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule(SimTime::EPOCH, Ev::Tick(0));
        let mut seen = Vec::new();
        eng.run_to_completion(|ctx, Ev::Tick(n)| {
            seen.push((ctx.now().as_secs(), n));
            if n < 4 {
                ctx.schedule_in(Dur::from_secs(1), Ev::Tick(n + 1));
            }
        });
        assert_eq!(seen, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert_eq!(eng.processed(), 5);
    }

    #[test]
    fn bounded_run_stops_at_horizon() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule(SimTime::EPOCH, Ev::Tick(0));
        let horizon = SimTime::EPOCH + Dur::from_secs(2);
        let n = eng.run_until(horizon, |ctx, Ev::Tick(n)| {
            ctx.schedule_in(Dur::from_secs(1), Ev::Tick(n + 1));
        });
        assert_eq!(n, 3); // t=0,1,2
        assert_eq!(eng.now(), horizon);
    }

    #[test]
    fn clock_advances_to_horizon_when_idle() {
        let mut eng: Engine<Ev> = Engine::new();
        let horizon = SimTime::EPOCH + Dur::from_secs(10);
        eng.run_until(horizon, |_, _| {});
        assert_eq!(eng.now(), horizon);
    }
}
