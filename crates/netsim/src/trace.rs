//! A lightweight packet-event recorder (smoltcp-style `--pcap`, minus the
//! binary format): flows can log every send outcome for debugging,
//! calibration forensics and example output.

use std::fmt;

use crate::channel::PathOutcome;
use crate::time::SimTime;

/// One recorded packet event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Send instant.
    pub sent: SimTime,
    /// Flow label.
    pub flow: String,
    /// What happened.
    pub outcome: PathOutcome,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            PathOutcome::Delivered { delay, .. } => {
                write!(f, "{} {} delivered +{}", self.sent, self.flow, delay)
            }
            PathOutcome::Lost { hop } => {
                write!(f, "{} {} LOST at hop {}", self.sent, self.flow, hop)
            }
        }
    }
}

/// Rolling trace buffer with loss accounting.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    sent: u64,
    lost: u64,
    /// When true, delivered packets are recorded too (off by default —
    /// loss forensics rarely need the happy path).
    pub record_delivered: bool,
}

impl Trace {
    /// A trace keeping at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            sent: 0,
            lost: 0,
            record_delivered: false,
        }
    }

    /// Records one send outcome.
    pub fn record(&mut self, flow: &str, sent: SimTime, outcome: PathOutcome) {
        self.sent += 1;
        let keep = match outcome {
            PathOutcome::Lost { .. } => {
                self.lost += 1;
                true
            }
            PathOutcome::Delivered { .. } => self.record_delivered,
        };
        if keep {
            if self.events.len() == self.capacity {
                self.events.remove(0);
            }
            self.events.push(TraceEvent {
                sent,
                flow: flow.to_string(),
                outcome,
            });
        }
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Packets seen.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets lost.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Loss fraction.
    pub fn loss_frac(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }

    /// Groups losses into bursts separated by at least `gap`: returns
    /// `(burst start, packets lost in burst)` — the Fig 10 forensics view.
    pub fn loss_bursts(&self, gap: crate::time::Dur) -> Vec<(SimTime, u32)> {
        let mut bursts: Vec<(SimTime, u32)> = Vec::new();
        for ev in &self.events {
            if !matches!(ev.outcome, PathOutcome::Lost { .. }) {
                continue;
            }
            match bursts.last_mut() {
                Some((start, n)) if ev.sent.since(*start) <= gap.mul(u64::from(*n) + 1) => {
                    *n += 1;
                }
                _ => bursts.push((ev.sent, 1)),
            }
        }
        bursts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn lost(at_secs: u64) -> (SimTime, PathOutcome) {
        (
            SimTime::EPOCH + Dur::from_secs(at_secs),
            PathOutcome::Lost { hop: 0 },
        )
    }

    fn ok(at_secs: u64) -> (SimTime, PathOutcome) {
        (
            SimTime::EPOCH + Dur::from_secs(at_secs),
            PathOutcome::Delivered {
                arrival: SimTime::EPOCH + Dur::from_secs(at_secs),
                delay: Dur::from_millis(10),
            },
        )
    }

    #[test]
    fn accounting_and_default_filtering() {
        let mut t = Trace::new(10);
        for (at, out) in [ok(1), lost(2), ok(3), lost(4)] {
            t.record("f", at, out);
        }
        assert_eq!(t.sent(), 4);
        assert_eq!(t.lost(), 2);
        assert!((t.loss_frac() - 0.5).abs() < 1e-12);
        assert_eq!(t.events().len(), 2, "only losses kept by default");
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut t = Trace::new(3);
        for i in 0..10 {
            let (at, out) = lost(i);
            t.record("f", at, out);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[0].sent, SimTime::EPOCH + Dur::from_secs(7));
        assert_eq!(t.sent(), 10);
    }

    #[test]
    fn record_delivered_flag() {
        let mut t = Trace::new(10);
        t.record_delivered = true;
        let (at, out) = ok(1);
        t.record("f", at, out);
        assert_eq!(t.events().len(), 1);
        assert!(t.events()[0].to_string().contains("delivered"));
    }

    #[test]
    fn burst_grouping() {
        let mut t = Trace::new(100);
        // Burst of 3 around t=10..12, isolated loss at t=100.
        for s in [10, 11, 12, 100] {
            let (at, out) = lost(s);
            t.record("f", at, out);
        }
        let bursts = t.loss_bursts(Dur::from_secs(2));
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].1, 3);
        assert_eq!(bursts[1].1, 1);
    }
}
