//! Deterministic random-number streams.
//!
//! Reproducibility rule for the whole workspace: a single master seed, fanned
//! out into named per-component streams. Adding a new randomised component
//! must not perturb the draws of existing ones, so each stream's seed is a
//! hash of `(master_seed, label)` rather than a draw from a shared RNG.

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fans a master seed out into independent named streams.
#[derive(Debug, Clone, Copy)]
pub struct RngTree {
    master: u64,
}

impl RngTree {
    /// Creates a tree rooted at `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master: master_seed,
        }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit seed for a labelled stream (FNV-1a over the label,
    /// mixed with the master via splitmix64 finalisation).
    pub fn seed_for(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.master;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        splitmix64(h)
    }

    /// Like [`RngTree::seed_for`], but hashes a `format_args!` label as it
    /// renders instead of requiring a materialised `String` — the per-probe
    /// hot paths derive thousands of flow seeds and must not allocate one
    /// label each. Produces the identical seed to
    /// `seed_for(&label.to_string())`.
    pub fn seed_for_args(&self, label: fmt::Arguments<'_>) -> u64 {
        struct Fnv(u64);
        impl fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                for b in s.as_bytes() {
                    self.0 ^= u64::from(*b);
                    self.0 = self.0.wrapping_mul(0x100000001b3);
                }
                Ok(())
            }
        }
        let mut h = Fnv(0xcbf29ce484222325 ^ self.master);
        fmt::write(&mut h, label).expect("label formatting failed");
        splitmix64(h.0)
    }

    /// A fresh RNG for a labelled stream.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(label))
    }

    /// A fresh RNG for a `format_args!` label (see [`RngTree::seed_for_args`]).
    pub fn stream_args(&self, label: fmt::Arguments<'_>) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for_args(label))
    }

    /// A fresh RNG for a labelled, indexed stream (e.g. per-link, per-host).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(
            self.seed_for(label) ^ index.wrapping_mul(0x9e3779b97f4a7c15),
        ))
    }

    /// A child tree, for components that themselves fan out.
    pub fn subtree(&self, label: &str) -> RngTree {
        RngTree {
            master: self.seed_for(label),
        }
    }
}

/// splitmix64 finalizer — cheap avalanche so close labels/indices yield
/// unrelated seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let t = RngTree::new(42);
        let a: Vec<u32> = t
            .stream("bgp")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = t
            .stream("bgp")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let t = RngTree::new(42);
        assert_ne!(t.seed_for("bgp"), t.seed_for("geo"));
        assert_ne!(t.seed_for("link-1"), t.seed_for("link-2"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(RngTree::new(1).seed_for("x"), RngTree::new(2).seed_for("x"));
    }

    #[test]
    fn indexed_streams_differ() {
        let t = RngTree::new(7);
        let s0 = t.seed_for("host");
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            let mut r = t.stream_indexed("host", i);
            seen.insert(r.gen::<u64>());
        }
        assert_eq!(seen.len(), 1000, "indexed streams must not collide");
        let _ = s0;
    }

    #[test]
    fn args_seed_matches_string_seed() {
        let t = RngTree::new(123);
        for (a, b, c) in [(0u32, "x", true), (17, "hop:AS1", false), (9999, "", true)] {
            let label = format!("flow:{a}:{b}:{c}");
            assert_eq!(
                t.seed_for(&label),
                t.seed_for_args(format_args!("flow:{a}:{b}:{c}")),
                "label {label}"
            );
        }
        // Multi-fragment rendering (padding, positional args) hashes the
        // rendered bytes, not the fragments.
        assert_eq!(
            t.seed_for("n=007"),
            t.seed_for_args(format_args!("n={:03}", 7))
        );
    }

    #[test]
    fn subtree_isolated() {
        let t = RngTree::new(9);
        let sub = t.subtree("media");
        assert_ne!(sub.seed_for("x"), t.seed_for("x"));
        assert_eq!(sub.seed_for("x"), t.subtree("media").seed_for("x"));
    }
}
