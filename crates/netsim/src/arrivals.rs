//! Poisson call arrivals shaped by diurnal profiles.
//!
//! The live service plane needs calls *arriving over time*, not replayed
//! flow sets: a non-homogeneous Poisson process whose instantaneous rate
//! follows a [`DiurnalProfile`] (the same curves that drive congestion
//! loss — call volume and link utilisation share a clock).
//!
//! Determinism contract: arrivals are generated **per window**, and the
//! arrivals of window `i` are a pure function of `(master seed, i)` — the
//! window's RNG stream derives from its label, never from how many windows
//! were generated before it or on which thread. That lets a campaign fan
//! windows (or anything keyed on them) out over [`crate::Par`] and still
//! produce byte-identical artefacts at any thread count.
//!
//! The sampler is the classic thinning construction: homogeneous
//! exponential gaps at the peak rate, each candidate kept with probability
//! `rate(t) / peak`. Both draws come from the window's own stream.

use rand::Rng;

use crate::diurnal::DiurnalProfile;
use crate::rng::RngTree;
use crate::time::{Dur, SimTime};

/// A non-homogeneous Poisson arrival process with windowed, seed-stable
/// generation.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalProcess {
    /// Peak (maximum) arrival rate, calls per second. The instantaneous
    /// rate is `peak * profile.utilization(t)`.
    peak_rate_per_s: f64,
    /// Rate-shaping curve (utilisation in `[0, 1]` multiplies the peak).
    profile: DiurnalProfile,
    /// Generation window width.
    window: Dur,
}

impl ArrivalProcess {
    /// Builds a process.
    ///
    /// # Panics
    /// Panics when `window` is zero or `peak_rate_per_s` is negative or
    /// non-finite.
    pub fn new(peak_rate_per_s: f64, profile: DiurnalProfile, window: Dur) -> Self {
        assert!(window > Dur::ZERO, "arrival window must be non-empty");
        assert!(
            peak_rate_per_s.is_finite() && peak_rate_per_s >= 0.0,
            "peak rate must be finite and non-negative"
        );
        Self {
            peak_rate_per_s,
            profile,
            window,
        }
    }

    /// The generation window width.
    pub fn window(&self) -> Dur {
        self.window
    }

    /// The peak arrival rate, calls per second.
    pub fn peak_rate_per_s(&self) -> f64 {
        self.peak_rate_per_s
    }

    /// Instantaneous arrival rate at `t`, calls per second.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.peak_rate_per_s * self.profile.utilization(t)
    }

    /// The start of window `idx`.
    pub fn window_start(&self, idx: u64) -> SimTime {
        SimTime::EPOCH + self.window.mul(idx)
    }

    /// Arrival instants inside window `idx`, in time order.
    ///
    /// A pure function of `(tree, idx)`: the window's candidates and
    /// thinning draws come from the `arrivals:{idx}` stream of `tree`, so
    /// any window can be generated on any thread, in any order, and still
    /// yield the identical sequence.
    pub fn window_arrivals(&self, tree: &RngTree, idx: u64) -> Vec<SimTime> {
        if self.peak_rate_per_s <= 0.0 {
            return Vec::new();
        }
        let mut rng = tree.stream_args(format_args!("arrivals:{idx}"));
        let start = self.window_start(idx);
        let span_s = self.window.as_secs_f64();
        let mut out = Vec::new();
        let mut t_s = 0.0f64;
        loop {
            // Exponential gap at the peak rate; 1 - u keeps the argument of
            // ln strictly positive for u in [0, 1).
            let u: f64 = rng.gen();
            t_s += -(1.0 - u).ln() / self.peak_rate_per_s;
            if t_s >= span_s {
                return out;
            }
            let at = start + Dur::from_nanos((t_s * 1e9).round() as u64);
            // Thinning: keep with probability rate(at) / peak.
            let keep: f64 = rng.gen();
            if keep * self.peak_rate_per_s < self.rate_at(at) {
                out.push(at);
            }
        }
    }

    /// Expected arrivals per window at the *peak* rate (an upper bound on
    /// the mean of [`ArrivalProcess::window_arrivals`]'s length).
    pub fn peak_mean_per_window(&self) -> f64 {
        self.peak_rate_per_s * self.window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diurnal::DiurnalShape;

    fn flat(rate: f64) -> ArrivalProcess {
        ArrivalProcess::new(rate, DiurnalProfile::flat(1.0), Dur::from_mins(5))
    }

    #[test]
    fn pure_function_of_seed_and_window() {
        let p = flat(3.0);
        let tree = RngTree::new(9);
        let a = p.window_arrivals(&tree, 7);
        let b = p.window_arrivals(&tree, 7);
        assert_eq!(a, b);
        assert_ne!(a, p.window_arrivals(&tree, 8));
    }

    #[test]
    fn arrivals_stay_inside_window_and_are_sorted() {
        let p = flat(10.0);
        let tree = RngTree::new(4);
        for idx in [0u64, 3, 17] {
            let arr = p.window_arrivals(&tree, idx);
            let (lo, hi) = (p.window_start(idx), p.window_start(idx + 1));
            assert!(!arr.is_empty());
            for w in arr.windows(2) {
                assert!(w[0] <= w[1]);
            }
            assert!(*arr.first().unwrap() >= lo);
            assert!(*arr.last().unwrap() < hi);
        }
    }

    #[test]
    fn flat_profile_hits_the_nominal_rate() {
        let p = flat(5.0);
        let tree = RngTree::new(11);
        let n: usize = (0..40).map(|i| p.window_arrivals(&tree, i).len()).sum();
        let expect = 5.0 * 300.0 * 40.0;
        let got = n as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn diurnal_shaping_thins_off_peak() {
        // A business-hours profile: windows at 13:00 local must see far more
        // arrivals than windows at 03:00.
        let profile = DiurnalProfile::new(DiurnalShape::Business, 0.05, 0.95, 0.0);
        let p = ArrivalProcess::new(8.0, profile, Dur::from_mins(30));
        let tree = RngTree::new(5);
        let window_at = |hour: u64| hour * 2; // 30-min windows
        let noonish: usize = (0..4)
            .map(|k| p.window_arrivals(&tree, window_at(13) + k).len())
            .sum();
        let night: usize = (0..4)
            .map(|k| p.window_arrivals(&tree, window_at(3) + k).len())
            .sum();
        assert!(
            noonish > 4 * night.max(1),
            "noon {noonish} vs night {night}"
        );
    }

    #[test]
    fn zero_rate_is_silent() {
        let p = flat(0.0);
        assert!(p.window_arrivals(&RngTree::new(1), 0).is_empty());
        let zeroed = ArrivalProcess::new(4.0, DiurnalProfile::flat(0.0), Dur::from_mins(5));
        assert!(zeroed.window_arrivals(&RngTree::new(1), 3).is_empty());
    }
}
