//! Active measurement: the probing methods of the paper's Secs 4.1, 4.3
//! and 5.2, reproduced against simulated paths.
//!
//! * [`rtt_probe`] — "a probe consists of 5 ICMP ping packets, and we
//!   record the lowest observed round-trip time";
//! * [`loss_train`] — "each host is probed once every 10 minutes using 100
//!   packets that are sent back to back" (back-to-back spacing matters:
//!   bursty loss processes hit consecutive packets together);
//! * [`rounds`]/[`TrainSummary`] — probe-round scheduling over multi-day
//!   windows and campaign aggregation.

use vns_netsim::{Dur, PathChannel, PathOutcome, SimTime};

/// Result of one RTT probe (n echo requests, min RTT kept).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttProbe {
    /// Echo requests sent.
    pub sent: u32,
    /// Echo replies received.
    pub received: u32,
    /// Minimum observed RTT, ms (`None` when everything was lost).
    pub min_rtt_ms: Option<f64>,
}

/// Sends `count` echo requests spaced `gap` apart at `start`; the reply
/// returns on `reverse`. Mirrors `ping -c count`.
pub fn rtt_probe(
    forward: &mut PathChannel,
    reverse: &mut PathChannel,
    start: SimTime,
    count: u32,
    gap: Dur,
) -> RttProbe {
    let mut received = 0;
    let mut min_rtt: Option<f64> = None;
    let pings = (0..count).map(|i| start + gap.mul(u64::from(i)));
    for (t, outcome) in forward.send_many(pings) {
        if let PathOutcome::Delivered { arrival, .. } = outcome {
            if let PathOutcome::Delivered {
                arrival: back_at, ..
            } = reverse.send(arrival)
            {
                received += 1;
                let rtt = (back_at - t).as_millis_f64();
                min_rtt = Some(min_rtt.map_or(rtt, |m: f64| m.min(rtt)));
            }
        }
    }
    RttProbe {
        sent: count,
        received,
        min_rtt_ms: min_rtt,
    }
}

/// The paper's standard RTT probe: 5 pings, 200 ms apart.
pub fn rtt_probe_std(
    forward: &mut PathChannel,
    reverse: &mut PathChannel,
    start: SimTime,
) -> RttProbe {
    rtt_probe(forward, reverse, start, 5, Dur::from_millis(200))
}

/// Result of one back-to-back loss train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossTrain {
    /// When the train started.
    pub at: SimTime,
    /// Packets sent.
    pub sent: u32,
    /// Packets lost (either direction of the echo).
    pub lost: u32,
}

impl LossTrain {
    /// Loss fraction of this round.
    pub fn loss_frac(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            f64::from(self.lost) / f64::from(self.sent)
        }
    }

    /// Whether the round saw any loss (Fig 12 counts rounds, not packets).
    pub fn lossy(&self) -> bool {
        self.lost > 0
    }
}

/// Sends `count` echo requests back-to-back (wire-rate ~0.1 ms spacing) and
/// counts round-trip losses.
pub fn loss_train(
    forward: &mut PathChannel,
    reverse: &mut PathChannel,
    at: SimTime,
    count: u32,
) -> LossTrain {
    let spacing = Dur::from_micros(100);
    let mut lost = 0;
    let train = (0..count).map(|i| at + spacing.mul(u64::from(i)));
    for (_, outcome) in forward.send_many(train) {
        match outcome {
            PathOutcome::Lost { .. } => lost += 1,
            PathOutcome::Delivered { arrival, .. } => {
                if !reverse.send(arrival).delivered() {
                    lost += 1;
                }
            }
        }
    }
    LossTrain {
        at,
        sent: count,
        lost,
    }
}

/// Probe-round start times: every `interval` over `[start, start+span)`.
pub fn rounds(start: SimTime, interval: Dur, span: Dur) -> Vec<SimTime> {
    let n = span.div_count(interval);
    (0..n).map(|i| start + interval.mul(i)).collect()
}

/// A summary over many loss trains to one target.
#[derive(Debug, Clone, Default)]
pub struct TrainSummary {
    /// Rounds run.
    pub rounds: u32,
    /// Rounds with any loss.
    pub lossy_rounds: u32,
    /// Total packets sent.
    pub sent: u64,
    /// Total packets lost.
    pub lost: u64,
}

impl TrainSummary {
    /// Folds one train in.
    pub fn add(&mut self, t: &LossTrain) {
        self.rounds += 1;
        if t.lossy() {
            self.lossy_rounds += 1;
        }
        self.sent += u64::from(t.sent);
        self.lost += u64::from(t.lost);
    }

    /// Average loss fraction over all packets.
    pub fn avg_loss_frac(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vns_netsim::{HopChannel, LossModel, LossProcess};

    fn ideal(ms: f64, seed: u64) -> PathChannel {
        PathChannel::new(vec![HopChannel::ideal(ms)], SmallRng::seed_from_u64(seed))
    }

    fn lossy(p: f64, seed: u64) -> PathChannel {
        let mut hop = HopChannel::ideal(5.0);
        hop.loss = LossProcess::new(LossModel::Bernoulli { p }, SmallRng::seed_from_u64(seed));
        PathChannel::new(vec![hop], SmallRng::seed_from_u64(seed + 1))
    }

    #[test]
    fn rtt_probe_measures_base_delay() {
        let mut f = ideal(25.0, 1);
        let mut r = ideal(25.0, 2);
        let p = rtt_probe_std(&mut f, &mut r, SimTime::EPOCH);
        assert_eq!(p.received, 5);
        let rtt = p.min_rtt_ms.unwrap();
        assert!((50.0..51.5).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn min_of_five_below_mean() {
        // With jitter, min of 5 samples is below the average sample.
        let mut f = ideal(25.0, 3);
        let mut r = ideal(25.0, 4);
        let mut mins = Vec::new();
        for i in 0..50u64 {
            let t = SimTime::EPOCH + Dur::from_secs(i * 10);
            mins.push(rtt_probe_std(&mut f, &mut r, t).min_rtt_ms.unwrap());
        }
        let avg_min: f64 = mins.iter().sum::<f64>() / mins.len() as f64;
        assert!(avg_min < 50.6, "avg of mins {avg_min}");
    }

    #[test]
    fn total_loss_yields_none() {
        let mut f = lossy(1.0, 5);
        let mut r = ideal(5.0, 6);
        let p = rtt_probe_std(&mut f, &mut r, SimTime::EPOCH);
        assert_eq!(p.received, 0);
        assert_eq!(p.min_rtt_ms, None);
    }

    #[test]
    fn loss_train_counts() {
        let mut f = lossy(0.1, 7);
        let mut r = ideal(5.0, 8);
        let t = loss_train(&mut f, &mut r, SimTime::EPOCH, 100);
        assert_eq!(t.sent, 100);
        assert!(t.lost >= 3 && t.lost <= 20, "lost {}", t.lost);
        assert!(t.lossy());
        assert!((t.loss_frac() - f64::from(t.lost) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn rounds_schedule() {
        let r = rounds(SimTime::EPOCH, Dur::from_mins(10), Dur::from_hours(1));
        assert_eq!(r.len(), 6);
        assert_eq!(r[1] - r[0], Dur::from_mins(10));
    }

    #[test]
    fn summary_folds() {
        let mut s = TrainSummary::default();
        s.add(&LossTrain {
            at: SimTime::EPOCH,
            sent: 100,
            lost: 0,
        });
        s.add(&LossTrain {
            at: SimTime::EPOCH,
            sent: 100,
            lost: 10,
        });
        assert_eq!(s.rounds, 2);
        assert_eq!(s.lossy_rounds, 1);
        assert!((s.avg_loss_frac() - 0.05).abs() < 1e-12);
    }
}
