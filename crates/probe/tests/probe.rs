//! Probe scheduling and aggregation determinism.
//!
//! The campaigns fan probe rounds out over worker threads, so everything
//! here must hold for the artefacts to be byte-identical at any thread
//! count: round schedules are pure functions of (start, interval, span);
//! per-round results depend only on the round's label-derived RNG stream,
//! never on the order rounds execute; and summary aggregation commutes.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_netsim::{Dur, HopChannel, LossModel, LossProcess, PathChannel, RngTree, SimTime, Window};
use vns_probe::{loss_train, rounds, rtt_probe_std, LossTrain, TrainSummary};

/// A 2-hop path with Bernoulli loss, all state derived from one seed.
fn lossy_path(p: f64, seed: u64) -> PathChannel {
    let mut hop = HopChannel::ideal(12.0);
    hop.loss = LossProcess::new(
        LossModel::Bernoulli { p },
        SmallRng::seed_from_u64(seed ^ 0xA5A5),
    );
    PathChannel::new(
        vec![hop, HopChannel::ideal(8.0)],
        SmallRng::seed_from_u64(seed),
    )
}

fn ideal_path(seed: u64) -> PathChannel {
    PathChannel::new(vec![HopChannel::ideal(5.0)], SmallRng::seed_from_u64(seed))
}

/// One probe round the way campaigns run it: fresh forward/reverse
/// channels from the round's label-derived seeds, then one loss train.
fn run_round(tree: &RngTree, round: usize, at: SimTime) -> LossTrain {
    let mut fwd = lossy_path(0.08, tree.seed_for_args(format_args!("round:{round}:fwd")));
    let mut rev = ideal_path(tree.seed_for_args(format_args!("round:{round}:rev")));
    loss_train(&mut fwd, &mut rev, at, 100)
}

#[test]
fn schedule_covers_multi_day_span_at_paper_cadence() {
    // Paper Sec 5.1: one 100-packet train every 10 minutes, for days.
    let span = Dur::from_days(3);
    let interval = Dur::from_mins(10);
    let r = rounds(SimTime::EPOCH, interval, span);
    assert_eq!(r.len(), 3 * 24 * 6);
    // Evenly spaced from the start, and the last round is inside the span.
    for (i, t) in r.iter().enumerate() {
        assert_eq!(*t, SimTime::EPOCH + interval.mul(i as u64));
    }
    assert!(*r.last().expect("rounds") < SimTime::EPOCH + span);
}

#[test]
fn schedule_floors_partial_intervals() {
    // 25 minutes fit two whole 10-minute intervals; no round starts in the
    // trailing fragment.
    let r = rounds(SimTime::EPOCH, Dur::from_mins(10), Dur::from_mins(25));
    assert_eq!(r.len(), 2);
}

#[test]
fn schedule_aligns_with_telemetry_windows() {
    // Rounds at a cadence that divides the window width land a fixed
    // number of rounds in every window — the property Fig 12's per-window
    // round counts rely on.
    let width = Dur::from_mins(30);
    let r = rounds(SimTime::EPOCH, Dur::from_mins(10), Dur::from_hours(6));
    let mut per_window = std::collections::BTreeMap::new();
    for t in &r {
        *per_window
            .entry(Window::of(*t, width).index)
            .or_insert(0u32) += 1;
    }
    assert_eq!(per_window.len(), 12);
    assert!(per_window.values().all(|&n| n == 3));
}

#[test]
fn round_results_do_not_depend_on_execution_order() {
    // A worker that picks rounds up in reverse (or any) order must produce
    // the same per-round trains, because each round's channels derive from
    // its label, not from shared walk-order state.
    let tree = RngTree::new(404).subtree("probe-campaign");
    let at = |i: usize| SimTime::EPOCH + Dur::from_mins(10).mul(i as u64);
    let forward: Vec<LossTrain> = (0..24).map(|i| run_round(&tree, i, at(i))).collect();
    let mut reverse: Vec<LossTrain> = (0..24).rev().map(|i| run_round(&tree, i, at(i))).collect();
    reverse.reverse();
    assert_eq!(forward, reverse);
    // And a fresh rerun reproduces byte-for-byte.
    let again: Vec<LossTrain> = (0..24).map(|i| run_round(&tree, i, at(i))).collect();
    assert_eq!(forward, again);
}

#[test]
fn distinct_round_labels_get_distinct_loss_fates() {
    // The point of per-round streams: rounds are independent samples, not
    // replays of one packet-fate sequence.
    let tree = RngTree::new(405).subtree("probe-campaign");
    let trains: Vec<LossTrain> = (0..40)
        .map(|i| run_round(&tree, i, SimTime::EPOCH))
        .collect();
    let distinct: std::collections::BTreeSet<u32> = trains.iter().map(|t| t.lost).collect();
    assert!(
        distinct.len() > 3,
        "only {} distinct loss counts",
        distinct.len()
    );
}

#[test]
fn summary_aggregation_is_order_insensitive() {
    let tree = RngTree::new(406).subtree("probe-campaign");
    let trains: Vec<LossTrain> = (0..50)
        .map(|i| run_round(&tree, i, SimTime::EPOCH))
        .collect();
    let fold = |order: &[usize]| {
        let mut s = TrainSummary::default();
        for &i in order {
            s.add(&trains[i]);
        }
        (s.rounds, s.lossy_rounds, s.sent, s.lost)
    };
    let fwd: Vec<usize> = (0..trains.len()).collect();
    let rev: Vec<usize> = (0..trains.len()).rev().collect();
    let mut shuffled: Vec<usize> = (0..trains.len()).collect();
    shuffled.rotate_left(17);
    assert_eq!(fold(&fwd), fold(&rev));
    assert_eq!(fold(&fwd), fold(&shuffled));
}

#[test]
fn rtt_probe_is_deterministic_per_label() {
    let tree = RngTree::new(407).subtree("rtt");
    let probe = |label: u64| {
        let mut f = ideal_path(tree.seed_for_args(format_args!("p:{label}:f")));
        let mut r = ideal_path(tree.seed_for_args(format_args!("p:{label}:r")));
        rtt_probe_std(&mut f, &mut r, SimTime::EPOCH)
    };
    let a = probe(1);
    assert_eq!(a, probe(1), "same label must reproduce");
    assert_eq!(a.received, 5);
    // Different labels draw different jitter, so the min RTTs differ.
    let b = probe(2);
    assert_ne!(a.min_rtt_ms, b.min_rtt_ms, "independent probes identical");
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Loss accounting is bounded and self-consistent for any loss
        /// probability, train length and seed.
        #[test]
        fn train_counts_bounded(p in 0.0f64..1.0, count in 1u32..200, seed in 0u64..1_000) {
            let mut f = lossy_path(p, seed);
            let mut r = ideal_path(seed ^ 0x77);
            let t = loss_train(&mut f, &mut r, SimTime::EPOCH, count);
            prop_assert_eq!(t.sent, count);
            prop_assert!(t.lost <= t.sent);
            prop_assert!((0.0..=1.0).contains(&t.loss_frac()));
            prop_assert_eq!(t.lossy(), t.lost > 0);
        }

        /// Schedules are pure: any (interval, span) pair yields floor
        /// division many rounds, strictly increasing and inside the span.
        #[test]
        fn schedule_pure_and_in_span(interval_m in 1u64..120, span_m in 0u64..2_000) {
            let interval = Dur::from_mins(interval_m);
            let span = Dur::from_mins(span_m);
            let r = rounds(SimTime::EPOCH, interval, span);
            prop_assert_eq!(r.len() as u64, span_m / interval_m);
            for w in r.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            if let Some(last) = r.last() {
                prop_assert!(*last < SimTime::EPOCH + span);
            }
        }
    }
}
