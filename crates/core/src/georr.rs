//! The geo route-reflector hook — the paper's modified Quagga.
//!
//! Sec 3.2, "Basic operation": *"Our Quagga RR is modified to assign a
//! local preference value to each route based on its geographic location.
//! When it receives an update message from an egress router A concerning a
//! network prefix p, it calculates the geographic distance d between A and
//! p. … After calculating d, our route reflector computes the
//! corresponding local preference lp as a function of d … The newly
//! assigned local preference is always much higher than the default value
//! of 100. Finally, it re-advertises the modified route to all neighbors
//! except A."*
//!
//! [`GeoHook`] implements exactly that as an import hook on the reflector
//! speakers: the egress router is the route's next hop (next-hop-self at
//! ingress preserves it across iBGP), its location is known from the PoP
//! map, and the prefix's location comes from the GeoIP database. The
//! management overrides (Sec 3.2, "Overriding Geo-routing") are consulted
//! first.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use vns_bgp::{ImportHook, Prefix, RouteAttrs, RouteSource, SpeakerId, DEFAULT_LOCAL_PREF};
use vns_geo::{GeoIpDb, GeoPoint};

use crate::lpfunc::LocalPrefFn;
use crate::mgmt::Overrides;
use crate::pops::PopId;

/// LOCAL_PREF given to the forced egress PoP's routes.
pub const FORCED_EXIT_PREF: u32 = 100_000;
/// LOCAL_PREF given to every other egress when an exit is forced (still
/// above default so hot-potato doesn't resurface through a stale route).
pub const FORCED_OTHER_PREF: u32 = 150;

/// The reflector's import transformation.
#[derive(Debug, Clone)]
pub struct GeoHook {
    /// GeoIP view shared with the rest of the deployment.
    geoip: Arc<GeoIpDb<Prefix>>,
    /// Location of every VNS router.
    router_locations: Arc<BTreeMap<SpeakerId, GeoPoint>>,
    /// PoP of every VNS router (for forced exits).
    router_pops: Arc<BTreeMap<SpeakerId, PopId>>,
    /// The `f(d)` shape.
    lp_fn: LocalPrefFn,
    /// Live management overrides.
    overrides: Arc<RwLock<Overrides>>,
}

impl GeoHook {
    /// Builds a hook over shared deployment state.
    pub fn new(
        geoip: Arc<GeoIpDb<Prefix>>,
        router_locations: Arc<BTreeMap<SpeakerId, GeoPoint>>,
        router_pops: Arc<BTreeMap<SpeakerId, PopId>>,
        lp_fn: LocalPrefFn,
        overrides: Arc<RwLock<Overrides>>,
    ) -> Self {
        Self {
            geoip,
            router_locations,
            router_pops,
            lp_fn,
            overrides,
        }
    }

    /// The preference this hook would assign to a route for `prefix`
    /// egressing at `router` (exposed for tests and diagnostics).
    pub fn preference_for(&self, router: SpeakerId, prefix: Prefix) -> Option<u32> {
        let loc = self.geoip.lookup(prefix).ok()?;
        let rloc = self.router_locations.get(&router)?;
        Some(self.lp_fn.compute(rloc.distance_km(&loc)))
    }

    /// The LOCAL_PREF this hook assigns to a route for `prefix` egressing
    /// at `egress`, overrides included; `None` leaves the route untouched
    /// (prefix missing from GeoIP with no override active).
    ///
    /// This is the *whole* transformation: it depends only on the egress
    /// router and the prefix, never on the incoming attributes — which is
    /// what makes the hook idempotent and lets `vns-verify` recompute the
    /// expected preference for every reflector Adj-RIB-In entry.
    pub fn assigned_pref(&self, egress: SpeakerId, prefix: Prefix) -> Option<u32> {
        let overrides = self.overrides.read().expect("overrides lock poisoned");
        if overrides.is_exempt(&prefix) {
            // Exempted from geo-routing: fall back to default preference,
            // i.e. plain BGP behaviour (Sec 3.2: "exempting a prefix
            // altogether from being geo-routed, in case it is spread
            // globally").
            return Some(DEFAULT_LOCAL_PREF);
        }
        if let Some(forced) = overrides.forced_exit(&prefix) {
            let here = self.router_pops.get(&egress);
            return Some(if here == Some(&forced) {
                FORCED_EXIT_PREF
            } else {
                FORCED_OTHER_PREF
            });
        }
        // Normal geo scoring. Prefixes missing from the GeoIP database
        // keep their default preference (the paper's fallback).
        self.preference_for(egress, prefix)
    }
}

impl ImportHook for GeoHook {
    fn on_import(
        &self,
        _from: SpeakerId,
        prefix: Prefix,
        source: &RouteSource,
        attrs: &mut RouteAttrs,
    ) {
        // Only routes arriving over iBGP from clients carry an egress to
        // score; the reflectors have no eBGP sessions, but be explicit.
        if !source.is_ibgp() {
            return;
        }
        // Never geo-score routes originated inside the VNS AS itself
        // (empty AS path): the paper's rewrite targets Internet
        // destinations. Service prefixes (the anycast relay, echo servers,
        // injected steering more-specifics) must keep default preference,
        // or the reflected copy would outrank each border's own Local
        // route and break anycast landing.
        if attrs.as_path.is_empty() {
            return;
        }
        if let Some(lp) = self.assigned_pref(attrs.next_hop, prefix) {
            attrs.local_pref = lp;
            // Runtime twin of the vns-verify geo-preference invariant: the
            // transformation must be idempotent — re-applying it to the
            // already-rewritten route assigns the same preference.
            debug_assert_eq!(
                self.assigned_pref(attrs.next_hop, prefix),
                Some(lp),
                "geo hook not idempotent for {prefix} via {}",
                attrs.next_hop
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vns_bgp::{Asn, Origin};
    use vns_geo::cities::city_by_name;

    fn loc(name: &str) -> GeoPoint {
        city_by_name(name).unwrap().1.location
    }

    fn setup() -> (GeoHook, Prefix) {
        let prefix: Prefix = "20.0.0.0/16".parse().unwrap();
        let mut geoip = GeoIpDb::new();
        geoip.insert(prefix, loc("Paris"), "FR");
        let mut locations = BTreeMap::new();
        locations.insert(SpeakerId(1), loc("Amsterdam"));
        locations.insert(SpeakerId(2), loc("Singapore"));
        let mut pops = BTreeMap::new();
        pops.insert(SpeakerId(1), PopId(9));
        pops.insert(SpeakerId(2), PopId(7));
        let hook = GeoHook::new(
            Arc::new(geoip),
            Arc::new(locations),
            Arc::new(pops),
            LocalPrefFn::default(),
            Arc::new(RwLock::new(Overrides::default())),
        );
        (hook, prefix)
    }

    fn attrs(next_hop: u32) -> RouteAttrs {
        RouteAttrs {
            local_pref: DEFAULT_LOCAL_PREF,
            as_path: vec![Asn(7)].into(),
            origin: Origin::Igp,
            med: 0,
            communities: vec![],
            next_hop: SpeakerId(next_hop),
            originator_id: None,
            cluster_list: vec![],
        }
    }

    fn ibgp(from: u32) -> RouteSource {
        RouteSource::Ibgp {
            peer: SpeakerId(from),
        }
    }

    #[test]
    fn closer_egress_scores_higher() {
        let (hook, prefix) = setup();
        // Paris prefix: Amsterdam egress beats Singapore egress.
        let mut a = attrs(1);
        hook.on_import(SpeakerId(1), prefix, &ibgp(1), &mut a);
        let mut b = attrs(2);
        hook.on_import(SpeakerId(2), prefix, &ibgp(2), &mut b);
        assert!(
            a.local_pref > b.local_pref,
            "{} vs {}",
            a.local_pref,
            b.local_pref
        );
        assert!(b.local_pref > DEFAULT_LOCAL_PREF, "always above default");
    }

    #[test]
    fn unknown_prefix_untouched() {
        let (hook, _) = setup();
        let other: Prefix = "99.0.0.0/16".parse().unwrap();
        let mut a = attrs(1);
        hook.on_import(SpeakerId(1), other, &ibgp(1), &mut a);
        assert_eq!(a.local_pref, DEFAULT_LOCAL_PREF);
    }

    #[test]
    fn ebgp_updates_ignored() {
        let (hook, prefix) = setup();
        let mut a = attrs(1);
        hook.on_import(
            SpeakerId(1),
            prefix,
            &RouteSource::Ebgp {
                peer: SpeakerId(9),
                peer_as: Asn(9),
                relation: vns_bgp::Relation::Provider,
            },
            &mut a,
        );
        assert_eq!(a.local_pref, DEFAULT_LOCAL_PREF);
    }

    #[test]
    fn exempt_prefix_reverts_to_default() {
        let (hook, prefix) = setup();
        hook.overrides.write().unwrap().exempt(prefix);
        let mut a = attrs(1);
        a.local_pref = 999;
        hook.on_import(SpeakerId(1), prefix, &ibgp(1), &mut a);
        assert_eq!(a.local_pref, DEFAULT_LOCAL_PREF);
    }

    #[test]
    fn forced_exit_dominates_geography() {
        let (hook, prefix) = setup();
        // Force the Paris prefix out of Singapore (PoP 7).
        hook.overrides.write().unwrap().force_exit(prefix, PopId(7));
        let mut ams = attrs(1);
        hook.on_import(SpeakerId(1), prefix, &ibgp(1), &mut ams);
        let mut sin = attrs(2);
        hook.on_import(SpeakerId(2), prefix, &ibgp(2), &mut sin);
        assert_eq!(sin.local_pref, FORCED_EXIT_PREF);
        assert_eq!(ams.local_pref, FORCED_OTHER_PREF);
        assert!(sin.local_pref > ams.local_pref);
    }
}
