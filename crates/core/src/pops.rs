//! The 11 points of presence and the dedicated L2 topology.
//!
//! PoP ids are chosen so the figures line up with the paper's: Fig 4 names
//! PoPs 3 and 5 as US east coast, 7 as AP, 9 as EU and 10 as London.

use vns_geo::cities::city_by_name;
use vns_geo::{CityId, PopRegion};

/// A PoP identifier (1-based, matching the paper's Fig 4 axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PopId(pub u8);

impl std::fmt::Display for PopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoP{}", self.0)
    }
}

/// Regional cluster (PoPs inside one are fully L2-meshed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterId {
    /// North America.
    Na,
    /// Europe.
    Eu,
    /// Asia-Pacific.
    Ap,
    /// Oceania.
    Oc,
}

/// Static description of one PoP.
#[derive(Debug, Clone, Copy)]
pub struct PopSpec {
    /// Paper-aligned id.
    pub id: PopId,
    /// Short name used in the paper's Fig 11 (ATL, ASH, SJS, AMS, FRA,
    /// LON, OSL, HK, SIN, SYD) plus SEA.
    pub code: &'static str,
    /// City (must exist in the `vns-geo` table).
    pub city_name: &'static str,
    /// PoP region (Sec 4.4's EU/US/AP/OC split).
    pub region: PopRegion,
    /// Cluster membership.
    pub cluster: ClusterId,
    /// Relative relay capacity share (concurrent-session units). Major
    /// hub sites run bigger relay fleets; the service plane apportions an
    /// absolute per-PoP session budget proportional to these.
    pub relay_units: u16,
}

/// Number of PoPs ("currently, there are 11 PoPs on four continents").
pub const POP_COUNT: usize = 11;

/// The deployment map.
pub const POP_SPECS: [PopSpec; POP_COUNT] = [
    PopSpec {
        id: PopId(1),
        code: "SJS",
        city_name: "SanJose",
        region: PopRegion::Us,
        cluster: ClusterId::Na,
        relay_units: 3,
    },
    PopSpec {
        id: PopId(2),
        code: "SEA",
        city_name: "Seattle",
        region: PopRegion::Us,
        cluster: ClusterId::Na,
        relay_units: 2,
    },
    PopSpec {
        id: PopId(3),
        code: "ATL",
        city_name: "Atlanta",
        region: PopRegion::Us,
        cluster: ClusterId::Na,
        relay_units: 2,
    },
    PopSpec {
        id: PopId(4),
        code: "OSL",
        city_name: "Oslo",
        region: PopRegion::Eu,
        cluster: ClusterId::Eu,
        relay_units: 1,
    },
    PopSpec {
        id: PopId(5),
        code: "ASH",
        city_name: "Ashburn",
        region: PopRegion::Us,
        cluster: ClusterId::Na,
        relay_units: 3,
    },
    PopSpec {
        id: PopId(6),
        code: "FRA",
        city_name: "Frankfurt",
        region: PopRegion::Eu,
        cluster: ClusterId::Eu,
        relay_units: 2,
    },
    PopSpec {
        id: PopId(7),
        code: "SIN",
        city_name: "Singapore",
        region: PopRegion::Ap,
        cluster: ClusterId::Ap,
        relay_units: 3,
    },
    PopSpec {
        id: PopId(8),
        code: "HKG",
        city_name: "HongKong",
        region: PopRegion::Ap,
        cluster: ClusterId::Ap,
        relay_units: 2,
    },
    PopSpec {
        id: PopId(9),
        code: "AMS",
        city_name: "Amsterdam",
        region: PopRegion::Eu,
        cluster: ClusterId::Eu,
        relay_units: 3,
    },
    PopSpec {
        id: PopId(10),
        code: "LON",
        city_name: "London",
        region: PopRegion::Eu,
        cluster: ClusterId::Eu,
        relay_units: 3,
    },
    PopSpec {
        id: PopId(11),
        code: "SYD",
        city_name: "Sydney",
        region: PopRegion::Oc,
        cluster: ClusterId::Oc,
        relay_units: 2,
    },
];

/// Long-haul inter-cluster L2 circuits (by PoP id pairs): the transatlantic
/// LON–ASH, transpacific SJS–HKG, and Singapore's direct legs to the US,
/// Europe and Australia (Sec 4.3 credits Singapore's latency wins to
/// exactly these).
pub const INTER_CLUSTER_LINKS: [(PopId, PopId); 5] = [
    (PopId(10), PopId(5)), // LON–ASH
    (PopId(1), PopId(8)),  // SJS–HKG
    (PopId(7), PopId(1)),  // SIN–SJS
    (PopId(7), PopId(9)),  // SIN–AMS
    (PopId(7), PopId(11)), // SIN–SYD
];

/// A built PoP: spec plus its concrete routers.
#[derive(Debug, Clone)]
pub struct Pop {
    /// Static description.
    pub spec: PopSpec,
    /// Resolved city id.
    pub city: CityId,
    /// The PoP's border routers (router 0 holds the upstream transit
    /// sessions, router 1 the IXP peering sessions).
    pub borders: [vns_bgp::SpeakerId; 2],
}

impl Pop {
    /// Paper-aligned id.
    pub fn id(&self) -> PopId {
        self.spec.id
    }

    /// Short code (e.g. `"AMS"`).
    pub fn code(&self) -> &'static str {
        self.spec.code
    }

    /// Geographic location.
    pub fn location(&self) -> vns_geo::GeoPoint {
        vns_geo::city(self.city).location
    }
}

/// Resolves a spec's city id.
pub fn resolve_city(spec: &PopSpec) -> CityId {
    city_by_name(spec.city_name)
        .unwrap_or_else(|| panic!("PoP city {} missing from city table", spec.city_name))
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_pops_on_four_continents() {
        assert_eq!(POP_SPECS.len(), 11);
        let clusters: std::collections::BTreeSet<_> = POP_SPECS.iter().map(|p| p.cluster).collect();
        assert_eq!(clusters.len(), 4);
    }

    #[test]
    fn paper_figure_alignment() {
        // Fig 4: "PoPs 3 and 5 are located in the US east coast, PoP 7 is
        // located in AP, while PoP 9 is located in EU" and PoP 10 = London.
        let by_id = |i: u8| POP_SPECS.iter().find(|p| p.id == PopId(i)).unwrap();
        assert_eq!(by_id(3).code, "ATL");
        assert_eq!(by_id(5).code, "ASH");
        assert_eq!(by_id(7).region, PopRegion::Ap);
        assert_eq!(by_id(9).region, PopRegion::Eu);
        assert_eq!(by_id(10).city_name, "London");
    }

    #[test]
    fn relay_units_are_positive_and_hub_weighted() {
        let total: u32 = POP_SPECS.iter().map(|p| u32::from(p.relay_units)).sum();
        assert!(total >= POP_COUNT as u32, "every PoP has at least one unit");
        for spec in &POP_SPECS {
            assert!(spec.relay_units > 0, "{} has no relay capacity", spec.code);
        }
        let units = |code: &str| {
            POP_SPECS
                .iter()
                .find(|p| p.code == code)
                .unwrap()
                .relay_units
        };
        // Big hub sites outrank the single-purpose Oslo PoP.
        assert!(units("AMS") > units("OSL"));
        assert!(units("SJS") > units("OSL"));
    }

    #[test]
    fn cities_resolve() {
        for spec in &POP_SPECS {
            let c = resolve_city(spec);
            let city = vns_geo::city(c);
            assert_eq!(city.name, spec.city_name);
        }
    }

    #[test]
    fn inter_cluster_links_cross_clusters() {
        let cluster_of = |id: PopId| POP_SPECS.iter().find(|p| p.id == id).unwrap().cluster;
        for (a, b) in INTER_CLUSTER_LINKS {
            assert_ne!(cluster_of(a), cluster_of(b), "{a}–{b} must cross clusters");
        }
    }

    #[test]
    fn singapore_has_three_long_haul_legs() {
        let sin = PopId(7);
        let n = INTER_CLUSTER_LINKS
            .iter()
            .filter(|(a, b)| *a == sin || *b == sin)
            .count();
        assert_eq!(n, 3, "SIN–US, SIN–EU, SIN–AU");
    }
}
