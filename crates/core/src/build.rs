//! Assembling the VNS deployment inside a generated Internet.
//!
//! Build order mirrors a real deployment: racks (routers) into PoPs,
//! dedicated L2 circuits and the IGP over them, iBGP to the reflectors,
//! transit and peering sessions at each PoP, then service prefixes (the
//! anycast relay address and the echo servers) — and finally BGP
//! convergence.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use rand::Rng;

use vns_bgp::{
    Asn, ConvergenceError, IgpGraph, PeerConfig, PeerKind, Policy, Prefix, Relation, Speaker,
    SpeakerId,
};
use vns_geo::cities::city_by_name;
use vns_geo::{city, CityId, GeoPoint, Region};
use vns_netsim::RngTree;
use vns_topo::internet::{AsInfo, PrefixInfo};
use vns_topo::{AsId, AsType, Internet};

use crate::config::{RoutingMode, VnsConfig};
use crate::georr::GeoHook;
use crate::mgmt::Overrides;
use crate::pops::{resolve_city, Pop, PopId, INTER_CLUSTER_LINKS, POP_SPECS};
use crate::service::{EchoServer, Vns};

/// Base of the VNS service address space (96.0.0.0; /16 per service).
const VNS_PREFIX_BASE: u32 = 0x6000_0000;

/// Builds VNS into `internet` and converges the combined control plane.
pub fn build_vns(internet: &mut Internet, config: &VnsConfig) -> Result<Vns, ConvergenceError> {
    let tree = RngTree::new(config.seed).subtree("vns");
    let asn = internet.alloc_asn();

    // --- Routers & PoPs ---------------------------------------------------
    let mut pops: Vec<Pop> = Vec::with_capacity(POP_SPECS.len());
    for spec in POP_SPECS {
        let city_id = resolve_city(&spec);
        let b0 = internet.alloc_speaker_id();
        let b1 = internet.alloc_speaker_id();
        for id in [b0, b1] {
            let mut s = Speaker::new(id, asn);
            s.set_best_external(config.best_external);
            internet.net.add_speaker(s);
        }
        pops.push(Pop {
            spec,
            city: city_id,
            borders: [b0, b1],
        });
    }
    let rr0 = internet.alloc_speaker_id();
    let rr1 = internet.alloc_speaker_id();
    let pop_by_id = |id: PopId| -> &Pop { pops.iter().find(|p| p.id() == id).expect("pop id") };
    let ams = pop_by_id(PopId(9)).city;
    let ash = pop_by_id(PopId(5)).city;
    for (rr, _rr_city) in [(rr0, ams), (rr1, ash)] {
        internet.net.add_speaker(Speaker::new(rr, asn));
    }

    // --- AS registration ----------------------------------------------------
    let as_id = internet.add_as(AsInfo {
        id: internet.next_as_id(),
        asn,
        ty: AsType::Stp,
        region: Region::Europe,
        home_city: ams,
        presence: pops.iter().map(|p| p.city).collect(),
        speaker: None,
        routers: pops
            .iter()
            .flat_map(|p| p.borders.map(|b| (p.city, b)))
            .collect(),
        prefixes: Vec::new(),
        dedicated: true,
        igp: None,
    });
    for pop in &pops {
        for b in pop.borders {
            internet.register_router(b, as_id, pop.city);
        }
    }
    internet.register_router(rr0, as_id, ams);
    internet.register_router(rr1, as_id, ash);

    // --- Dedicated L2 topology + IGP ---------------------------------------
    let mut igp = IgpGraph::new();
    for pop in &pops {
        igp.add_link(pop.borders[0], pop.borders[1], 1);
    }
    // Regional clusters: full mesh between the border-0 routers. The
    // full-mesh ablation links every PoP pair instead.
    for i in 0..pops.len() {
        for j in (i + 1)..pops.len() {
            if config.full_mesh_l2 || pops[i].spec.cluster == pops[j].spec.cluster {
                let km = Internet::city_km(pops[i].city, pops[j].city).max(1.0) as u64;
                igp.add_link(pops[i].borders[0], pops[j].borders[0], km);
            }
        }
    }
    if !config.full_mesh_l2 {
        for (a, b) in INTER_CLUSTER_LINKS {
            let (pa, pb) = (pop_by_id(a), pop_by_id(b));
            let km = Internet::city_km(pa.city, pb.city).max(1.0) as u64;
            igp.add_link(pa.borders[0], pb.borders[0], km);
        }
    }
    igp.add_link(rr0, pop_by_id(PopId(9)).borders[0], 1);
    igp.add_link(rr1, pop_by_id(PopId(5)).borders[0], 1);
    // Install per-router IGP cost tables.
    let all_routers: Vec<SpeakerId> = pops
        .iter()
        .flat_map(|p| p.borders)
        .chain([rr0, rr1])
        .collect();
    for &r in &all_routers {
        let costs = igp.shortest_costs(r);
        internet
            .net
            .speaker_mut(r)
            .expect("router exists")
            .set_igp_costs(costs.into_iter().collect());
    }
    internet.as_info_mut(as_id).igp = Some(igp);

    // --- iBGP ----------------------------------------------------------------
    let flat = Policy::FlatPreference;
    for rr in [rr0, rr1] {
        for pop in &pops {
            for b in pop.borders {
                internet.net.connect_rr_client(rr, b, flat);
            }
        }
    }
    internet.net.connect(
        rr0,
        PeerConfig {
            kind: PeerKind::Ibgp,
            import: flat,
        },
        rr1,
        PeerConfig {
            kind: PeerKind::Ibgp,
            import: flat,
        },
    );

    // --- Geo hook -------------------------------------------------------------
    let overrides = Arc::new(RwLock::new(Overrides::default()));
    let mut router_pop_map: BTreeMap<SpeakerId, PopId> = BTreeMap::new();
    let mut router_loc: BTreeMap<SpeakerId, GeoPoint> = BTreeMap::new();
    for pop in &pops {
        for b in pop.borders {
            router_pop_map.insert(b, pop.id());
            router_loc.insert(b, pop.location());
        }
    }
    router_loc.insert(rr0, city(ams).location);
    router_loc.insert(rr1, city(ash).location);
    let router_pop = Arc::new(router_pop_map);
    if config.mode == RoutingMode::GeoColdPotato {
        let geoip = Arc::new(internet.geoip.clone());
        let locations = Arc::new(router_loc);
        for rr in [rr0, rr1] {
            let hook = GeoHook::new(
                Arc::clone(&geoip),
                Arc::clone(&locations),
                Arc::clone(&router_pop),
                config.lp_fn,
                Arc::clone(&overrides),
            );
            let speaker = internet.net.speaker_mut(rr).expect("rr exists");
            speaker.set_import_hook(Box::new(hook));
            // Geo mode overrides hot potato, so the reflectors' own IGP
            // position must not leak into their choice: with two
            // reflectors at different sites, a vantage-dependent
            // tie-break between equally geo-preferred egresses lets each
            // reflector pick a different one, and the two egresses —
            // each preferring the other's reflected route over its own
            // eBGP route (geo LOCAL_PREF > default) — then deflect
            // traffic to each other in a stable forwarding loop. The
            // `igp-metric ignore` knob makes every reflector resolve the
            // tie identically (cluster list, then sender id).
            speaker.set_ignore_igp_metric(true);
        }
    }

    // --- Transit (upstreams) ----------------------------------------------------
    let upstream_ltps: Vec<AsId> = internet
        .ases()
        .filter(|a| a.ty == AsType::Ltp)
        .take(config.upstream_count)
        .map(|a| a.id)
        .collect();
    assert!(
        !upstream_ltps.is_empty(),
        "the generated Internet must contain at least one LTP"
    );
    let ashburn_city = city_by_name("Ashburn").expect("Ashburn in table").0;
    let mut pop_upstream: BTreeMap<PopId, (AsId, CityId)> = BTreeMap::new();
    for (i, pop) in pops.iter().enumerate() {
        let is_london = pop.spec.code == "LON";
        let london_misconfigured = is_london && config.london_us_upstream;
        let mut chosen: Vec<(AsId, CityId)> = Vec::new();
        if london_misconfigured {
            // The Fig 11 anomaly: London's main transit is a US-centric
            // Tier-1. The port is physically in London — so in BGP it looks
            // local and wins hot-potato ties, which is exactly why the
            // operator doesn't notice — but the circuit backhauls to the
            // provider's Ashburn fabric, so the data plane crosses the
            // Atlantic twice for destinations that are around the corner.
            chosen.push((upstream_ltps[0], ashburn_city));
        }
        // Candidates present at the PoP's own city, rotated per PoP for
        // diversity; fall back to the nearest presence city.
        let mut candidates: Vec<(AsId, CityId)> = upstream_ltps
            .iter()
            .map(|&ltp| {
                let info = internet.as_info(ltp);
                let entry = if info.presence.contains(&pop.city) {
                    pop.city
                } else {
                    *info
                        .presence
                        .iter()
                        .min_by(|a, b| {
                            Internet::city_km(pop.city, **a)
                                .total_cmp(&Internet::city_km(pop.city, **b))
                        })
                        .expect("LTPs have presence")
                };
                (ltp, entry)
            })
            .collect();
        let n = candidates.len().max(1);
        candidates.rotate_left(i % n);
        for cand in candidates {
            if chosen.iter().any(|(a, _)| *a == cand.0) {
                continue;
            }
            chosen.push(cand);
            if chosen.len() >= config.upstreams_per_pop.max(1) {
                break;
            }
        }
        pop_upstream.insert(pop.id(), chosen[0]);
        for (i, (ltp, entry_city)) in chosen.into_iter().enumerate() {
            let misconfigured_port = london_misconfigured && i == 0;
            let ltp_sp = internet
                .router_of(ltp, entry_city)
                .expect("LTP has routers");
            let ltp_asn = internet.as_info(ltp).asn;
            connect_session(
                internet,
                pop.borders[0],
                asn,
                pop.city,
                ltp_sp,
                ltp_asn,
                entry_city,
                Relation::Provider,
            );
            let router_city = internet.city_of_router(ltp_sp).expect("registered");
            let cost = Internet::city_km(router_city, entry_city) as u64;
            if let Some(s) = internet.net.speaker_mut(ltp_sp) {
                s.set_session_cost(pop.borders[0], cost);
            }
            if misconfigured_port {
                // The border router believes this is a local port: zero
                // exit cost, so the session wins hot-potato ties even
                // though the circuit actually lands across the Atlantic.
                if let Some(s) = internet.net.speaker_mut(pop.borders[0]) {
                    s.set_session_cost(ltp_sp, 0);
                }
            }
        }
    }

    // --- Peering -------------------------------------------------------------
    // "VNS peers openly with any other interested AS … if a peer is present
    // with VNS at different IXPs, VNS always establishes peering at all
    // sites if possible."
    let mut rng = tree.stream("peering");
    let peer_candidates: Vec<(AsId, Asn, SpeakerId, CityId, Vec<CityId>)> = internet
        .ases()
        .filter(|a| matches!(a.ty, AsType::Stp | AsType::Cahp))
        .filter_map(|a| {
            a.speaker
                .map(|sp| (a.id, a.asn, sp, a.home_city, a.presence.clone()))
        })
        .collect();
    let mut peers: Vec<AsId> = Vec::new();
    for (peer_id, peer_asn, peer_sp, peer_home, presence) in peer_candidates {
        let shared_pops: Vec<(SpeakerId, CityId)> = pops
            .iter()
            .filter(|p| presence.contains(&p.city))
            .map(|p| (p.borders[1], p.city))
            .collect();
        if shared_pops.is_empty() || !rng.gen_bool(config.peer_fraction) {
            continue;
        }
        peers.push(peer_id);
        for (border, pop_city) in shared_pops {
            connect_session(
                internet,
                border,
                asn,
                pop_city,
                peer_sp,
                peer_asn,
                pop_city,
                Relation::Peer,
            );
            let cost = Internet::city_km(peer_home, pop_city) as u64;
            if let Some(s) = internet.net.speaker_mut(peer_sp) {
                s.set_session_cost(border, cost);
            }
        }
    }

    // --- Service prefixes ------------------------------------------------------
    // Anycast TURN relay address, originated at every border router.
    let anycast_prefix = Prefix::new(VNS_PREFIX_BASE, 16);
    internet.add_prefix(
        PrefixInfo {
            prefix: anycast_prefix,
            origin: as_id,
            city: ams,
            location: city(ams).location,
            last_mile: false,
            anycast: true,
        },
        city(ams).country,
        city(ams).location,
    );
    for pop in &pops {
        for b in pop.borders {
            internet
                .net
                .speaker_mut(b)
                .expect("border exists")
                .originate(anycast_prefix);
        }
    }
    // Echo servers: two per measurement region (Sec 5.1 uses six).
    let echo_pops = [PopId(9), PopId(6), PopId(5), PopId(1), PopId(7), PopId(8)];
    let mut echo_servers = Vec::new();
    for (i, pid) in echo_pops.into_iter().enumerate() {
        let pop = pop_by_id(pid);
        let prefix = Prefix::new(VNS_PREFIX_BASE + (((i as u32) + 1) << 16), 16);
        internet.add_prefix(
            PrefixInfo {
                prefix,
                origin: as_id,
                city: pop.city,
                location: pop.location(),
                last_mile: false,
                anycast: false,
            },
            city(pop.city).country,
            pop.location(),
        );
        for b in pop.borders {
            internet
                .net
                .speaker_mut(b)
                .expect("border exists")
                .originate(prefix);
        }
        echo_servers.push(EchoServer { prefix, pop: pid });
    }
    internet.as_info_mut(as_id).prefixes.push(anycast_prefix);
    let echo_prefixes: Vec<Prefix> = echo_servers.iter().map(|e| e.prefix).collect();
    internet.as_info_mut(as_id).prefixes.extend(echo_prefixes);

    // --- Converge ----------------------------------------------------------------
    // Fold the VNS routers into the per-region shard map (their PoP cities
    // place them), then reconverge incrementally and in parallel: only the
    // speakers the deployment touched start active.
    internet.assign_region_shards();
    let stats = if config.monolithic_convergence {
        internet.net.run(config.message_budget)?
    } else {
        let threads = match config.convergence_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        internet.net.run_sharded(config.message_budget, threads)?
    };
    internet.convergence_log.push(stats);

    Ok(Vns::assemble(
        as_id,
        asn,
        config.mode,
        config.lp_fn,
        pops,
        [rr0, rr1],
        upstream_ltps,
        pop_upstream,
        peers,
        anycast_prefix,
        echo_servers,
        overrides,
        router_pop,
        config.message_budget,
    ))
}

/// Creates an eBGP session between a VNS border router and an external
/// AS-level speaker, recording the interconnect geometry.
#[allow(clippy::too_many_arguments)]
fn connect_session(
    internet: &mut Internet,
    border: SpeakerId,
    vns_asn: Asn,
    vns_city: CityId,
    ext_sp: SpeakerId,
    ext_asn: Asn,
    ext_city: CityId,
    vns_view: Relation,
) {
    internet.net.connect(
        border,
        PeerConfig {
            kind: PeerKind::Ebgp {
                peer_as: ext_asn,
                relation: vns_view,
            },
            import: Policy::FlatPreference,
        },
        ext_sp,
        PeerConfig {
            kind: PeerKind::Ebgp {
                peer_as: vns_asn,
                relation: vns_view.inverse(),
            },
            import: Policy::GaoRexford,
        },
    );
    internet.record_link(border, vns_city, ext_sp, ext_city);
    // Hot-potato cost at the border: the haul from the PoP to the far end
    // of the transit/peering port (0 for same-metro cross-connects; the
    // trans-Atlantic backhaul of London's US upstream is ~5900 km, so that
    // session only wins when its route is strictly shorter).
    let cost = Internet::city_km(vns_city, ext_city) as u64;
    if let Some(s) = internet.net.speaker_mut(border) {
        s.set_session_cost(ext_sp, cost);
    }
}
