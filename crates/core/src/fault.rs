//! Scripted control-plane fault injection and restoration.
//!
//! The VNS exists to keep calls alive when the Internet misbehaves: meshed
//! regional clusters, redundant long-haul circuits, paired route
//! reflectors, and best-external on border routers are all resilience
//! mechanisms (PAPER.md §2–3). This module provides the vocabulary for
//! exercising them: a [`FaultEvent`] names one control-plane incident, a
//! [`FaultPlan`] scripts a sequence of them, and a [`FaultInjector`]
//! applies events to a converged world while remembering enough state
//! (session configs, circuit costs) to undo each one exactly.
//!
//! The injector only mutates control-plane state — BGP sessions and IGP
//! link weights. It never deletes speakers: a "dead" router is one whose
//! BGP sessions are all torn down (control-plane crash), which is both the
//! common real-world failure and the one the paper's mechanisms defend
//! against. Re-running [`vns_bgp::BgpNet::run`] after each event yields
//! the incremental reconvergence the failover campaign measures.

use std::collections::{BTreeMap, BTreeSet};

use vns_bgp::{PeerConfig, SpeakerId};
use vns_topo::Internet;

use crate::service::Vns;

/// One scripted control-plane incident (or its repair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Tear down the BGP session between two speakers (eBGP or iBGP).
    SessionCut {
        /// One endpoint.
        a: SpeakerId,
        /// The other endpoint.
        b: SpeakerId,
    },
    /// Re-establish a session previously cut through the same injector.
    SessionRestore {
        /// One endpoint.
        a: SpeakerId,
        /// The other endpoint.
        b: SpeakerId,
    },
    /// Control-plane loss of a router: every BGP session it holds is cut.
    /// The router itself (and its IGP adjacencies) stays up — this models
    /// a BGP daemon crash / maintenance drain, not a line-card fire.
    RouterDown {
        /// The failing router.
        router: SpeakerId,
    },
    /// Restore every session of `router` that this injector cut — via
    /// [`FaultEvent::RouterDown`] or individual cuts.
    RouterUp {
        /// The recovering router.
        router: SpeakerId,
    },
    /// Cut the dedicated L2 circuit between two VNS routers: the IGP link
    /// disappears and every VNS router's IGP cost table is recomputed.
    /// BGP sessions are untouched (they ride the remaining mesh).
    CircuitCut {
        /// One endpoint.
        a: SpeakerId,
        /// The other endpoint.
        b: SpeakerId,
    },
    /// Restore a circuit previously cut through the same injector, at its
    /// original cost.
    CircuitRestore {
        /// One endpoint.
        a: SpeakerId,
        /// The other endpoint.
        b: SpeakerId,
    },
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::SessionCut { a, b } => write!(f, "cut-session {a}~{b}"),
            FaultEvent::SessionRestore { a, b } => write!(f, "restore-session {a}~{b}"),
            FaultEvent::RouterDown { router } => write!(f, "router-down {router}"),
            FaultEvent::RouterUp { router } => write!(f, "router-up {router}"),
            FaultEvent::CircuitCut { a, b } => write!(f, "cut-circuit {a}={b}"),
            FaultEvent::CircuitRestore { a, b } => write!(f, "restore-circuit {a}={b}"),
        }
    }
}

/// A named, ordered script of fault events. Each step is applied and
/// measured individually by the failover driver.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Stable scenario label (also the RNG stream / display key).
    pub name: String,
    /// Events in application order.
    pub steps: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from explicit steps.
    pub fn new(name: impl Into<String>, steps: Vec<FaultEvent>) -> Self {
        FaultPlan {
            name: name.into(),
            steps,
        }
    }

    /// Cut + restore of one session, repeated `cycles` times — a flapping
    /// eBGP session (each half-cycle is a measured step).
    pub fn session_flap(
        name: impl Into<String>,
        a: SpeakerId,
        b: SpeakerId,
        cycles: usize,
    ) -> Self {
        let mut steps = Vec::with_capacity(cycles * 2);
        for _ in 0..cycles {
            steps.push(FaultEvent::SessionCut { a, b });
            steps.push(FaultEvent::SessionRestore { a, b });
        }
        FaultPlan::new(name, steps)
    }

    /// Router loss followed by recovery (two measured steps).
    pub fn router_blip(name: impl Into<String>, router: SpeakerId) -> Self {
        FaultPlan::new(
            name,
            vec![
                FaultEvent::RouterDown { router },
                FaultEvent::RouterUp { router },
            ],
        )
    }

    /// Circuit cut followed by repair (two measured steps).
    pub fn circuit_blip(name: impl Into<String>, a: SpeakerId, b: SpeakerId) -> Self {
        FaultPlan::new(
            name,
            vec![
                FaultEvent::CircuitCut { a, b },
                FaultEvent::CircuitRestore { a, b },
            ],
        )
    }
}

/// Error from [`FaultInjector::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// The named session does not exist (cut) or was never severed by this
    /// injector (restore).
    UnknownSession(SpeakerId, SpeakerId),
    /// The router does not exist in the network.
    UnknownRouter(SpeakerId),
    /// The named IGP circuit does not exist (cut) or was never cut by this
    /// injector (restore), or the VNS has no IGP installed.
    UnknownCircuit(SpeakerId, SpeakerId),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownSession(a, b) => write!(f, "no such session {a}~{b}"),
            FaultError::UnknownRouter(r) => write!(f, "no such router {r}"),
            FaultError::UnknownCircuit(a, b) => write!(f, "no such circuit {a}={b}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Canonical (low, high) session key so `a~b` and `b~a` are one session.
fn session_key(a: SpeakerId, b: SpeakerId) -> (SpeakerId, SpeakerId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Applies [`FaultEvent`]s to a world and remembers how to undo them.
///
/// Severed sessions keep both endpoints' [`PeerConfig`]s so a restore
/// re-establishes the session exactly as built; cut circuits keep their
/// IGP cost. The injector also tracks which routers are currently down so
/// verification can be scoped to the degraded topology
/// (see `vns_verify::verify_scoped`).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    /// Severed sessions: canonical key → (config at key.0 for key.1,
    /// config at key.1 for key.0).
    severed: BTreeMap<(SpeakerId, SpeakerId), (PeerConfig, PeerConfig)>,
    /// Routers currently down (all sessions cut via [`FaultEvent::RouterDown`]).
    down: BTreeSet<SpeakerId>,
    /// Cut circuits: canonical key → original IGP cost.
    cut_circuits: BTreeMap<(SpeakerId, SpeakerId), u64>,
}

impl FaultInjector {
    /// A fresh injector with nothing severed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routers currently down, in id order. Feed this to
    /// `vns_verify::VerifyScope` when auditing a degraded control plane.
    pub fn dead_routers(&self) -> impl Iterator<Item = SpeakerId> + '_ {
        self.down.iter().copied()
    }

    /// True when every injected fault has been restored.
    pub fn fully_restored(&self) -> bool {
        self.severed.is_empty() && self.down.is_empty() && self.cut_circuits.is_empty()
    }

    /// Sessions currently severed, in canonical order.
    pub fn severed_sessions(&self) -> impl Iterator<Item = (SpeakerId, SpeakerId)> + '_ {
        self.severed.keys().copied()
    }

    /// Applies one event to the world. The caller re-runs
    /// `internet.net.run(..)` afterwards to reconverge incrementally.
    pub fn apply(
        &mut self,
        internet: &mut Internet,
        vns: &Vns,
        event: FaultEvent,
    ) -> Result<(), FaultError> {
        match event {
            FaultEvent::SessionCut { a, b } => self.cut_session(internet, a, b),
            FaultEvent::SessionRestore { a, b } => self.restore_session(internet, a, b),
            FaultEvent::RouterDown { router } => self.router_down(internet, router),
            FaultEvent::RouterUp { router } => self.router_up(internet, router),
            FaultEvent::CircuitCut { a, b } => self.circuit_cut(internet, vns, a, b),
            FaultEvent::CircuitRestore { a, b } => self.circuit_restore(internet, vns, a, b),
        }
    }

    fn cut_session(
        &mut self,
        internet: &mut Internet,
        a: SpeakerId,
        b: SpeakerId,
    ) -> Result<(), FaultError> {
        let key = session_key(a, b);
        let cfg_lo = internet
            .net
            .speaker(key.0)
            .and_then(|s| s.peer_config(key.1).copied())
            .ok_or(FaultError::UnknownSession(a, b))?;
        let cfg_hi = internet
            .net
            .speaker(key.1)
            .and_then(|s| s.peer_config(key.0).copied())
            .ok_or(FaultError::UnknownSession(a, b))?;
        self.severed.insert(key, (cfg_lo, cfg_hi));
        internet.net.disconnect(key.0, key.1);
        Ok(())
    }

    fn restore_session(
        &mut self,
        internet: &mut Internet,
        a: SpeakerId,
        b: SpeakerId,
    ) -> Result<(), FaultError> {
        let key = session_key(a, b);
        let (cfg_lo, cfg_hi) = self
            .severed
            .remove(&key)
            .ok_or(FaultError::UnknownSession(a, b))?;
        internet.net.reconnect(key.0, cfg_lo, key.1, cfg_hi);
        Ok(())
    }

    fn router_down(
        &mut self,
        internet: &mut Internet,
        router: SpeakerId,
    ) -> Result<(), FaultError> {
        let peers: Vec<SpeakerId> = internet
            .net
            .speaker(router)
            .ok_or(FaultError::UnknownRouter(router))?
            .peer_ids()
            .collect();
        for peer in peers {
            self.cut_session(internet, router, peer)?;
        }
        self.down.insert(router);
        Ok(())
    }

    fn router_up(&mut self, internet: &mut Internet, router: SpeakerId) -> Result<(), FaultError> {
        if !self.down.remove(&router) {
            return Err(FaultError::UnknownRouter(router));
        }
        let sessions: Vec<(SpeakerId, SpeakerId)> = self
            .severed
            .keys()
            .copied()
            .filter(|&(x, y)| x == router || y == router)
            .collect();
        for (x, y) in sessions {
            // Sessions to a peer that is itself still down stay severed
            // until that peer recovers.
            let other = if x == router { y } else { x };
            if self.down.contains(&other) {
                continue;
            }
            self.restore_session(internet, x, y)?;
        }
        Ok(())
    }

    fn circuit_cut(
        &mut self,
        internet: &mut Internet,
        vns: &Vns,
        a: SpeakerId,
        b: SpeakerId,
    ) -> Result<(), FaultError> {
        let key = session_key(a, b);
        let as_id = vns.as_id();
        let igp = {
            let info = internet.as_info_mut(as_id);
            let igp = info.igp.as_mut().ok_or(FaultError::UnknownCircuit(a, b))?;
            let cost = igp
                .remove_link(key.0, key.1)
                .ok_or(FaultError::UnknownCircuit(a, b))?;
            self.cut_circuits.insert(key, cost);
            igp.clone()
        };
        reinstall_igp_costs(internet, vns, &igp);
        Ok(())
    }

    fn circuit_restore(
        &mut self,
        internet: &mut Internet,
        vns: &Vns,
        a: SpeakerId,
        b: SpeakerId,
    ) -> Result<(), FaultError> {
        let key = session_key(a, b);
        let cost = self
            .cut_circuits
            .remove(&key)
            .ok_or(FaultError::UnknownCircuit(a, b))?;
        let as_id = vns.as_id();
        let igp = {
            let info = internet.as_info_mut(as_id);
            let igp = info.igp.as_mut().ok_or(FaultError::UnknownCircuit(a, b))?;
            igp.add_link(key.0, key.1, cost);
            igp.clone()
        };
        reinstall_igp_costs(internet, vns, &igp);
        Ok(())
    }
}

/// Pushes fresh per-router shortest-cost tables into every VNS speaker
/// after an IGP topology change (hot-potato inputs changed everywhere).
fn reinstall_igp_costs(internet: &mut Internet, vns: &Vns, igp: &vns_bgp::IgpGraph) {
    let routers: Vec<SpeakerId> = vns
        .pops()
        .iter()
        .flat_map(|p| p.borders)
        .chain(vns.reflectors())
        .collect();
    for r in routers {
        let costs = igp.shortest_costs(r);
        if let Some(sp) = internet.net.speaker_mut(r) {
            sp.set_igp_costs(costs);
        }
    }
}
