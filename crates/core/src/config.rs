//! VNS deployment configuration.

use crate::lpfunc::LocalPrefFn;

/// Which routing policy the overlay runs — the paper's before/after axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Default BGP: flat import preference, eBGP-over-iBGP, IGP-metric
    /// tie-breaks. The "before" of Figs 4 and 5 ("the use of hot-potato
    /// was prevalent; an egress router always preferred eBGP routes over
    /// iBGP routes").
    HotPotato,
    /// The contribution: route reflectors rewrite LOCAL_PREF from
    /// geographic distance, so traffic exits at the PoP closest to the
    /// destination prefix.
    GeoColdPotato,
}

/// Build-time configuration of the overlay.
#[derive(Debug, Clone)]
pub struct VnsConfig {
    /// Routing policy.
    pub mode: RoutingMode,
    /// The `lp = f(d)` shape installed on the reflectors.
    pub lp_fn: LocalPrefFn,
    /// Advertise best-external on border routers (the Sec 3.2 hidden-routes
    /// fix; disable only for the ablation).
    pub best_external: bool,
    /// How many upstream transit providers to contract (the paper has 7).
    pub upstream_count: usize,
    /// Transit sessions per PoP (how many of the upstreams each PoP buys
    /// from locally).
    pub upstreams_per_pop: usize,
    /// Fraction of co-located candidate networks VNS peers with ("VNS
    /// peers openly with any other interested AS").
    pub peer_fraction: f64,
    /// Use a US-centric Tier-1 as London's primary upstream, with the
    /// interconnect backhauled to Ashburn — the misconfiguration behind
    /// Fig 11's London anomaly.
    pub london_us_upstream: bool,
    /// Seed for peer-selection randomness.
    pub seed: u64,
    /// Message budget for convergence runs.
    pub message_budget: u64,
    /// Worker threads for the sharded reconvergence after the deployment
    /// is wired in ([`vns_bgp::BgpNet::run_sharded`]); `0` means one per
    /// available hardware thread. Never affects the built world — only
    /// wall-clock.
    pub convergence_threads: usize,
    /// Reconverge with the monolithic activation-queue engine
    /// ([`vns_bgp::BgpNet::run`]) instead of the sharded one. A reference
    /// oracle for differential tests; production builds leave this off.
    pub monolithic_convergence: bool,
    /// Replace the paper's cluster topology (regional meshes + 5 long-haul
    /// circuits) with a full PoP mesh — the cost/quality ablation of the
    /// Sec 3.1 design choice.
    pub full_mesh_l2: bool,
}

impl Default for VnsConfig {
    fn default() -> Self {
        Self {
            mode: RoutingMode::GeoColdPotato,
            lp_fn: LocalPrefFn::default(),
            best_external: true,
            upstream_count: 7,
            upstreams_per_pop: 4,
            peer_fraction: 0.6,
            london_us_upstream: true,
            seed: 0x5653_4e53, // "VSNS"
            message_budget: 100_000_000,
            convergence_threads: 0,
            monolithic_convergence: false,
            full_mesh_l2: false,
        }
    }
}

impl VnsConfig {
    /// The same deployment in hot-potato ("before") mode.
    pub fn before(mut self) -> Self {
        self.mode = RoutingMode::HotPotato;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = VnsConfig::default();
        assert_eq!(c.mode, RoutingMode::GeoColdPotato);
        assert_eq!(c.upstream_count, 7);
        assert!(c.best_external);
        assert_eq!(c.before().mode, RoutingMode::HotPotato);
    }
}
