//! **VNS** — the paper's contribution: a well-provisioned network-layer
//! overlay for video conferencing with geography-based cold-potato BGP
//! routing.
//!
//! The overlay (Sec 3 of the paper) is a single autonomous system of 11
//! PoPs on four continents. PoPs in one geographic region form a fully
//! meshed *cluster* over dedicated guaranteed-bandwidth L2 links; clusters
//! are joined by a few long-haul circuits (Singapore's direct legs to the
//! US, Europe and Australia are called out in Sec 4.3). Media enters and
//! leaves through TURN-style relays reachable on one anycast address.
//!
//! Routing (Sec 3.2): every border router speaks eBGP to upstream transit
//! providers and IXP peers, and iBGP to two route reflectors. The route
//! reflectors run the paper's modified Quagga logic — implemented here as
//! a [`GeoHook`] on the reflector speakers: on every update from a client,
//! LOCAL_PREF is rewritten as a decreasing function of the great-circle
//! distance between the announcing egress router and the prefix's GeoIP
//! location, so the whole AS converges on the geographically closest
//! egress ("cold potato"). Border routers advertise *best external* to
//! keep alternatives visible (the hidden-routes fix), and a management
//! interface ([`mgmt`]) can force exits, exempt badly geolocated prefixes,
//! or inject `NO_EXPORT`-tagged more-specifics.
//!
//! [`RoutingMode::HotPotato`] builds the same overlay without the geo
//! hook — the paper's "before" configuration that Figs 4 and 5 compare
//! against.

pub mod adversary;
pub mod build;
pub mod config;
pub mod economics;
pub mod fault;
pub mod georr;
pub mod lpfunc;
pub mod mgmt;
pub mod pops;
pub mod service;

pub use adversary::{launch as launch_attack, AttackError, AttackKind, LaunchedAttack};
pub use build::build_vns;
pub use config::{RoutingMode, VnsConfig};
pub use economics::{analyze as analyze_economics, CostBreakdown, CostModel, Demand};
pub use fault::{FaultError, FaultEvent, FaultInjector, FaultPlan};
pub use georr::GeoHook;
pub use lpfunc::LocalPrefFn;
pub use mgmt::Overrides;
pub use pops::{ClusterId, Pop, PopId, POP_COUNT};
pub use service::Vns;
