//! VNS economics — the in-depth cost analysis the paper's Sec 6 sketches
//! and defers to future work.
//!
//! The paper's qualitative claims, which this module makes computable:
//!
//! * cost components: equipment (one-time, amortised), hosting/power per
//!   PoP, settlement-free peering ports, IP transit (economies of scale),
//!   and the dedicated L2 circuits;
//! * "the Mbps price \[of L2 links\] is typically between two and three
//!   times the regular IP transit price in the same region";
//! * "purchasing a L2-link requires committing to a minimum traffic
//!   volume, i.e. a minimum bill that is paid regardless of how much is
//!   used";
//! * "the bulk of VNS overall cost lies in the use of the dedicated L2
//!   links";
//! * "our cold-potato routing increases the utilization of these links
//!   since it keeps traffic as long as possible inside VNS. Based on this,
//!   VNS is potentially capable of achieving economies of scale."
//!
//! [`analyze`] routes a synthetic demand matrix over the deployed overlay,
//! attributes carried megabits to every dedicated circuit and transit
//! port, and prices the result.

use std::collections::BTreeMap;

use vns_bgp::SpeakerId;
use vns_topo::Internet;

use crate::service::Vns;

/// Pricing assumptions (monthly, arbitrary currency units).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Amortised equipment cost per PoP per month.
    pub equipment_per_pop: f64,
    /// Hosting, power and cooling per PoP per month.
    pub hosting_per_pop: f64,
    /// Port/cross-connect fee per settlement-free peering session.
    pub peering_port: f64,
    /// IP transit price per Mbps at the smallest commit.
    pub transit_per_mbps_base: f64,
    /// Transit economy-of-scale exponent: price scales as
    /// `volume^-discount` (0 = flat pricing, ~0.25 is market-typical).
    pub transit_scale_discount: f64,
    /// L2 circuit price per Mbps, as a multiple of the regional transit
    /// base price (the paper: 2–3×).
    pub l2_price_factor: f64,
    /// Minimum commit per L2 circuit, Mbps (billed even if unused).
    pub l2_commit_mbps: f64,
    /// Extra price multiplier per 1000 km of circuit length (long-haul
    /// wavelengths cost more than metro ones).
    pub l2_km_factor_per_1000km: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            equipment_per_pop: 2_000.0,
            hosting_per_pop: 3_000.0,
            peering_port: 250.0,
            transit_per_mbps_base: 1.0, // the paper's "one USD/Mbps" Internet
            transit_scale_discount: 0.4,
            l2_price_factor: 2.5,
            l2_commit_mbps: 100.0,
            l2_km_factor_per_1000km: 0.25,
        }
    }
}

/// One relayed call's contribution to the demand matrix.
#[derive(Debug, Clone, Copy)]
pub struct Demand {
    /// Caller address (must be inside a registered prefix).
    pub caller: u32,
    /// Callee address.
    pub callee: u32,
    /// Sustained media bitrate, Mbps (both directions combined).
    pub mbps: f64,
}

/// Where the money goes.
#[derive(Debug, Clone)]
pub struct CostBreakdown {
    /// Total demand successfully routed, Mbps.
    pub routed_mbps: f64,
    /// Fixed monthly cost (equipment + hosting + peering ports).
    pub fixed: f64,
    /// Dedicated L2 circuit bill.
    pub l2: f64,
    /// IP transit bill.
    pub transit: f64,
    /// Per-circuit carried load, Mbps, keyed by the circuit's router
    /// endpoints.
    pub l2_load: BTreeMap<(SpeakerId, SpeakerId), f64>,
    /// Total transit egress volume, Mbps.
    pub transit_mbps: f64,
    /// Mean utilisation of the L2 commit across circuits (the
    /// cold-potato-pays-for-the-circuits effect).
    pub l2_commit_utilization: f64,
}

impl CostBreakdown {
    /// Total monthly cost.
    pub fn total(&self) -> f64 {
        self.fixed + self.l2 + self.transit
    }

    /// Cost per routed Mbps — the economies-of-scale headline.
    pub fn per_mbps(&self) -> f64 {
        self.total() / self.routed_mbps.max(1e-9)
    }
}

/// Routes `demands` through the overlay and prices the deployment.
pub fn analyze(
    vns: &Vns,
    internet: &Internet,
    model: &CostModel,
    demands: &[Demand],
) -> CostBreakdown {
    let mut l2_load: BTreeMap<(SpeakerId, SpeakerId), f64> = BTreeMap::new();
    let mut transit_mbps = 0.0;
    let mut routed = 0.0;

    for d in demands {
        let Ok(path) = vns.media_path(internet, d.caller, d.callee) else {
            continue;
        };
        routed += d.mbps;
        // Attribute the call's bitrate to each dedicated circuit it rides
        // (router pairs along the internal walk) and to the transit egress.
        let mut hop_routers = path.routers.iter();
        let mut prev = hop_routers.next().copied();
        for r in hop_routers {
            if let (Some(p), true) = (prev, vns.pop_of_router(*r).is_some()) {
                if vns.pop_of_router(p).is_some() {
                    let key = if p < *r { (p, *r) } else { (*r, p) };
                    *l2_load.entry(key).or_default() += d.mbps;
                }
            }
            prev = Some(*r);
        }
        // Media leaves VNS at the egress towards the callee: billed as
        // transit when the first router outside VNS belongs to an upstream
        // (settlement-free peer exits are free).
        let first_external = path
            .routers
            .iter()
            .find(|r| vns.pop_of_router(**r).is_none());
        if let Some(ext) = first_external {
            let is_upstream = internet
                .as_of_speaker(*ext)
                .is_some_and(|as_id| vns.upstreams().contains(&as_id));
            if is_upstream {
                transit_mbps += d.mbps;
            }
        }
    }

    // Price the circuits: every IGP edge between PoPs is a leased circuit
    // billed at max(commit, carried) Mbps, weighted by length.
    let igp = internet
        .as_info(vns.as_id())
        .igp
        .as_ref()
        .expect("VNS has an IGP");
    let mut l2_cost = 0.0;
    let mut commit_util_acc = 0.0;
    let mut circuits = 0usize;
    for (a, b, cost_km) in igp.edges() {
        if cost_km <= 1 {
            continue; // intra-PoP patch, not a leased circuit
        }
        let carried = l2_load.get(&(a.min(b), a.max(b))).copied().unwrap_or(0.0);
        let billed = carried.max(model.l2_commit_mbps);
        let km_factor = 1.0 + model.l2_km_factor_per_1000km * (cost_km as f64 / 1000.0);
        l2_cost += billed * model.transit_per_mbps_base * model.l2_price_factor * km_factor;
        commit_util_acc += (carried / model.l2_commit_mbps).min(1.0);
        circuits += 1;
    }

    // Transit with economies of scale.
    let unit =
        model.transit_per_mbps_base * (transit_mbps.max(1.0)).powf(-model.transit_scale_discount);
    let transit_cost = transit_mbps * unit;

    let fixed = vns.pops().len() as f64 * (model.equipment_per_pop + model.hosting_per_pop)
        + vns.peers().len() as f64 * model.peering_port;

    CostBreakdown {
        routed_mbps: routed,
        fixed,
        l2: l2_cost,
        transit: transit_cost,
        l2_load,
        transit_mbps,
        l2_commit_utilization: commit_util_acc / circuits.max(1) as f64,
    }
}

/// Builds a call-demand matrix over the registered prefixes: `n` calls
/// between prefix pairs (region-weighted by prefix density, which already
/// reflects the paper's "most videoconferences involve parties in the same
/// geographical region" through regional AS density), each at `mbps`.
pub fn sample_demands(internet: &Internet, n: usize, mbps: f64, seed: u64) -> Vec<Demand> {
    use rand::Rng;
    use rand::SeedableRng;
    let prefixes: Vec<(u32, vns_geo::Region)> = internet
        .prefixes()
        .filter(|p| p.last_mile)
        .map(|p| (p.prefix.first_host(), vns_geo::city(p.city).region))
        .collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let a = prefixes[rng.gen_range(0..prefixes.len())];
        // Paper: most calls are intra-regional; bias the callee choice.
        let b = if rng.gen_bool(0.7) {
            let same: Vec<_> = prefixes.iter().filter(|(_, r)| *r == a.1).collect();
            *same[rng.gen_range(0..same.len())]
        } else {
            prefixes[rng.gen_range(0..prefixes.len())]
        };
        if a.0 == b.0 {
            continue;
        }
        out.push(Demand {
            caller: a.0,
            callee: b.0,
            mbps,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_vns, VnsConfig};
    use vns_topo::{generate, TopoConfig};

    fn world() -> (Internet, Vns) {
        let mut internet = generate(&TopoConfig::tiny(61)).unwrap();
        let vns = build_vns(&mut internet, &VnsConfig::default()).unwrap();
        (internet, vns)
    }

    #[test]
    fn analysis_routes_and_prices() {
        let (internet, vns) = world();
        let demands = sample_demands(&internet, 200, 4.0, 1);
        let model = CostModel::default();
        let cb = analyze(&vns, &internet, &model, &demands);
        assert!(cb.routed_mbps > 0.5 * demands.len() as f64 * 4.0);
        assert!(cb.fixed > 0.0 && cb.l2 > 0.0);
        assert!(cb.total() > cb.l2, "total covers all components");
        assert!(!cb.l2_load.is_empty(), "calls ride dedicated circuits");
    }

    #[test]
    fn economies_of_scale() {
        let (internet, vns) = world();
        let model = CostModel::default();
        let small = analyze(
            &vns,
            &internet,
            &model,
            &sample_demands(&internet, 60, 4.0, 2),
        );
        let big = analyze(
            &vns,
            &internet,
            &model,
            &sample_demands(&internet, 1200, 4.0, 2),
        );
        assert!(
            big.per_mbps() < small.per_mbps() / 2.0,
            "per-Mbps cost must fall with volume: small {} big {}",
            small.per_mbps(),
            big.per_mbps()
        );
    }

    #[test]
    fn l2_dominates_at_scale() {
        // Paper: "the bulk of VNS overall cost lies in the use of the
        // dedicated L2 links, and this cost factor remains significant also
        // as the traffic volume increases".
        let (internet, vns) = world();
        let model = CostModel::default();
        let cb = analyze(
            &vns,
            &internet,
            &model,
            &sample_demands(&internet, 2000, 4.0, 3),
        );
        assert!(
            cb.l2 > cb.transit,
            "L2 {} should dominate transit {}",
            cb.l2,
            cb.transit
        );
    }

    #[test]
    fn cold_potato_fills_the_circuits() {
        // Geo routing carries traffic further inside VNS than hot potato,
        // so the same demand uses the circuits more.
        let mut internet_hot = generate(&TopoConfig::tiny(61)).unwrap();
        let vns_hot = build_vns(&mut internet_hot, &VnsConfig::default().before()).unwrap();
        let (internet_geo, vns_geo) = world();
        let model = CostModel::default();
        let d_geo = sample_demands(&internet_geo, 800, 4.0, 4);
        let d_hot = sample_demands(&internet_hot, 800, 4.0, 4);
        let geo = analyze(&vns_geo, &internet_geo, &model, &d_geo);
        let hot = analyze(&vns_hot, &internet_hot, &model, &d_hot);
        let carried = |cb: &CostBreakdown| cb.l2_load.values().sum::<f64>();
        assert!(
            carried(&geo) > carried(&hot),
            "cold potato carries more on the circuits: geo {} hot {}",
            carried(&geo),
            carried(&hot)
        );
    }
}
