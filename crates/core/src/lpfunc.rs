//! The LOCAL_PREF-from-distance function `lp = f(d)`.
//!
//! The paper only constrains `f`: decreasing in `d`, and "always much
//! higher than the default value of 100". The concrete shape is an
//! operator choice, so we implement three and ablate them
//! (`vns-bench ablate-lp`): fine-grained banded linear (default), inverse,
//! and coarse steps. Coarser bands create more ties, which then fall
//! through to the later decision steps — the ablation quantifies how much
//! egress precision that costs.

/// Half the Earth's circumference — an upper bound on great-circle
/// distance, km. Public so `vns-verify` can sweep the whole distance
/// domain when auditing a shape.
pub const MAX_DISTANCE_KM: f64 = 20_040.0;

/// The distance-to-preference function installed on the route reflectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalPrefFn {
    /// `lp = floor + (MAX - d) / band_km`: one preference level per
    /// `band_km` of distance. The default (25 km bands) is effectively
    /// continuous at inter-PoP scales.
    BandedLinear {
        /// Preference at the antipode (must stay ≫ 100).
        floor: u32,
        /// Width of one preference band, km.
        band_km: f64,
    },
    /// `lp = floor + scale / (d + 100)`: compresses differences at long
    /// range.
    Inverse {
        /// Preference floor.
        floor: u32,
        /// Numerator, km-preference units.
        scale: f64,
    },
    /// Coarse regional steps: <1000 km, <3000, <6000, <10000, beyond.
    Stepped,
}

impl Default for LocalPrefFn {
    fn default() -> Self {
        LocalPrefFn::BandedLinear {
            floor: 1_000,
            band_km: 25.0,
        }
    }
}

impl LocalPrefFn {
    /// Computes `lp` for a distance in km. Guaranteed `> 100` (the BGP
    /// default) for any non-negative distance.
    pub fn compute(&self, d_km: f64) -> u32 {
        let d = d_km.clamp(0.0, MAX_DISTANCE_KM);
        match self {
            LocalPrefFn::BandedLinear { floor, band_km } => {
                floor + ((MAX_DISTANCE_KM - d) / band_km.max(1.0)) as u32
            }
            LocalPrefFn::Inverse { floor, scale } => floor + (scale / (d + 100.0)) as u32,
            LocalPrefFn::Stepped => match d as u32 {
                0..=999 => 1_500,
                1_000..=2_999 => 1_400,
                3_000..=5_999 => 1_300,
                6_000..=9_999 => 1_200,
                _ => 1_100,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns() -> Vec<LocalPrefFn> {
        vec![
            LocalPrefFn::default(),
            LocalPrefFn::Inverse {
                floor: 1_000,
                scale: 2_000_000.0,
            },
            LocalPrefFn::Stepped,
        ]
    }

    #[test]
    fn always_far_above_default() {
        for f in fns() {
            for d in [0.0, 500.0, 5_000.0, 20_040.0, 1e9] {
                assert!(f.compute(d) > 100, "{f:?} at {d}");
            }
        }
    }

    #[test]
    fn monotone_nonincreasing() {
        for f in fns() {
            let mut prev = u32::MAX;
            for i in 0..200 {
                let lp = f.compute(i as f64 * 100.0);
                assert!(lp <= prev, "{f:?} not monotone at {i}");
                prev = lp;
            }
        }
    }

    #[test]
    fn nearer_strictly_preferred_at_pop_scale() {
        // Distances of distinct PoPs to a prefix differ by hundreds of km;
        // the default function must distinguish them.
        let f = LocalPrefFn::default();
        assert!(f.compute(300.0) > f.compute(900.0));
        assert!(f.compute(6_000.0) > f.compute(9_000.0));
    }

    #[test]
    fn negative_and_huge_clamped() {
        let f = LocalPrefFn::default();
        assert_eq!(f.compute(-5.0), f.compute(0.0));
        assert_eq!(f.compute(1e12), f.compute(MAX_DISTANCE_KM));
    }
}
