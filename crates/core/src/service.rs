//! The running VNS service: egress analysis, path resolution via VNS or
//! via raw transit, and the anycast relay service.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use vns_bgp::{Asn, PathError, Prefix, RouteSource, SpeakerId};
use vns_geo::{city, CityId, GeoPoint};
use vns_topo::path::{resolve_from_prefix, resolve_path, HopKind, ResolvedHop};
use vns_topo::{AsId, Internet, ResolvedPath};

use crate::config::RoutingMode;
use crate::lpfunc::LocalPrefFn;
use crate::mgmt::Overrides;
use crate::pops::{Pop, PopId};

/// One echo server deployment (Sec 5.1: "SIP media servers programmed to
/// stream back any incoming video stream").
#[derive(Debug, Clone, Copy)]
pub struct EchoServer {
    /// Its service prefix.
    pub prefix: Prefix,
    /// The PoP hosting it.
    pub pop: PopId,
}

impl EchoServer {
    /// The address media is sent to.
    pub fn address(&self) -> u32 {
        self.prefix.first_host()
    }
}

/// A built VNS deployment (see [`crate::build_vns`]).
#[derive(Debug)]
pub struct Vns {
    as_id: AsId,
    asn: Asn,
    mode: RoutingMode,
    lp_fn: LocalPrefFn,
    pops: Vec<Pop>,
    rrs: [SpeakerId; 2],
    upstreams: Vec<AsId>,
    pop_upstream: BTreeMap<PopId, (AsId, CityId)>,
    peers: Vec<AsId>,
    anycast_prefix: Prefix,
    echo_servers: Vec<EchoServer>,
    overrides: Arc<RwLock<Overrides>>,
    router_pop: Arc<BTreeMap<SpeakerId, PopId>>,
    message_budget: u64,
}

impl Vns {
    /// Internal constructor used by the builder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        as_id: AsId,
        asn: Asn,
        mode: RoutingMode,
        lp_fn: LocalPrefFn,
        pops: Vec<Pop>,
        rrs: [SpeakerId; 2],
        upstreams: Vec<AsId>,
        pop_upstream: BTreeMap<PopId, (AsId, CityId)>,
        peers: Vec<AsId>,
        anycast_prefix: Prefix,
        echo_servers: Vec<EchoServer>,
        overrides: Arc<RwLock<Overrides>>,
        router_pop: Arc<BTreeMap<SpeakerId, PopId>>,
        message_budget: u64,
    ) -> Self {
        Self {
            as_id,
            asn,
            mode,
            lp_fn,
            pops,
            rrs,
            upstreams,
            pop_upstream,
            peers,
            anycast_prefix,
            echo_servers,
            overrides,
            router_pop,
            message_budget,
        }
    }

    /// The VNS AS id in the Internet registry.
    pub fn as_id(&self) -> AsId {
        self.as_id
    }

    /// The VNS AS number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Routing mode this deployment was built with.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// The `lp = f(d)` shape installed on the reflectors (what `vns-verify`
    /// audits against the converged RIBs).
    pub fn lp_fn(&self) -> LocalPrefFn {
        self.lp_fn
    }

    /// All PoPs in id order.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// PoP by id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn pop(&self, id: PopId) -> &Pop {
        self.pops
            .iter()
            .find(|p| p.id() == id)
            .unwrap_or_else(|| panic!("unknown {id}"))
    }

    /// PoP by short code (`"AMS"`, `"SJS"`, …).
    pub fn pop_by_code(&self, code: &str) -> Option<&Pop> {
        self.pops.iter().find(|p| p.code() == code)
    }

    /// The two route reflectors.
    pub fn reflectors(&self) -> [SpeakerId; 2] {
        self.rrs
    }

    /// Upstream transit providers, most-preferred first ("upstream 1" of
    /// Fig 5 is index 0).
    pub fn upstreams(&self) -> &[AsId] {
        &self.upstreams
    }

    /// ASes VNS peers with.
    pub fn peers(&self) -> &[AsId] {
        &self.peers
    }

    /// A PoP's primary upstream and the city where that transit port
    /// lands.
    pub fn primary_upstream(&self, pop: PopId) -> (AsId, CityId) {
        self.pop_upstream[&pop]
    }

    /// The anycast TURN relay address.
    pub fn anycast_address(&self) -> u32 {
        self.anycast_prefix.first_host()
    }

    /// The anycast prefix.
    pub fn anycast_prefix(&self) -> Prefix {
        self.anycast_prefix
    }

    /// Echo server deployments.
    pub fn echo_servers(&self) -> &[EchoServer] {
        &self.echo_servers
    }

    /// Live management override table (shared with the reflectors' hook).
    pub fn overrides(&self) -> &Arc<RwLock<Overrides>> {
        &self.overrides
    }

    /// Message budget for reconvergence runs.
    pub fn message_budget(&self) -> u64 {
        self.message_budget
    }

    /// The PoP a VNS router belongs to.
    pub fn pop_of_router(&self, router: SpeakerId) -> Option<PopId> {
        self.router_pop.get(&router).copied()
    }

    /// The geographically nearest PoP to a location.
    pub fn nearest_pop(&self, loc: GeoPoint) -> PopId {
        self.pops
            .iter()
            .min_by(|a, b| {
                a.location()
                    .distance_km(&loc)
                    .total_cmp(&b.location().distance_km(&loc))
            })
            .expect("pops non-empty")
            .id()
    }

    /// PoPs ordered by great-circle distance from PoP `from` (nearest
    /// first, `from` itself excluded). This is the admission controller's
    /// spill order: when `from` is at capacity a call is offered to each
    /// PoP in this order up to the spill depth, so regional saturation
    /// degrades to nearby PoPs before it rejects.
    pub fn spill_order(&self, from: PopId) -> Vec<PopId> {
        let origin = self.pop(from).location();
        let mut rest: Vec<(f64, PopId)> = self
            .pops
            .iter()
            .filter(|p| p.id() != from)
            .map(|p| (origin.distance_km(&p.location()), p.id()))
            .collect();
        // Ties (if any) break on PoP id so the order is total and stable.
        rest.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        rest.into_iter().map(|(_, id)| id).collect()
    }

    /// Apportions an absolute concurrent-session budget across PoPs in
    /// proportion to their [`crate::pops::PopSpec::relay_units`], largest-
    /// remainder rounding, every PoP guaranteed at least one slot. Returns
    /// `(PopId, capacity)` in id order.
    pub fn apportion_capacity(&self, total_sessions: u64) -> Vec<(PopId, u64)> {
        let units: u64 = self
            .pops
            .iter()
            .map(|p| u64::from(p.spec.relay_units))
            .sum();
        let mut rows: Vec<(PopId, u64, u64)> = self
            .pops
            .iter()
            .map(|p| {
                let u = u64::from(p.spec.relay_units);
                let exact = total_sessions * u;
                (p.id(), exact / units, exact % units)
            })
            .collect();
        let assigned: u64 = rows.iter().map(|r| r.1).sum();
        let mut leftover = total_sessions.saturating_sub(assigned);
        // Largest remainder first; PoP id breaks ties deterministically.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| rows[b].2.cmp(&rows[a].2).then(rows[a].0.cmp(&rows[b].0)));
        for i in order {
            if leftover == 0 {
                break;
            }
            rows[i].1 += 1;
            leftover -= 1;
        }
        rows.into_iter()
            .map(|(id, cap, _)| (id, cap.max(1)))
            .collect()
    }

    /// From PoP `from`'s perspective, the egress PoP its best route to
    /// `dst_ip` uses (the Fig 4 metric). `None` when no route.
    pub fn egress_pop(&self, internet: &Internet, from: PopId, dst_ip: u32) -> Option<PopId> {
        let border = self.pop(from).borders[0];
        let speaker = internet.net.speaker(border)?;
        let (_, cand) = speaker.lookup(dst_ip)?;
        match cand.source {
            RouteSource::Ebgp { .. } | RouteSource::Local => Some(from),
            RouteSource::Ibgp { .. } => self.pop_of_router(cand.attrs.next_hop),
        }
    }

    /// The neighbouring AS the selected route exits through, from PoP
    /// `from`'s perspective (the Fig 5 metric). `None` for VNS-internal
    /// destinations or missing routes.
    pub fn exit_neighbor(&self, internet: &Internet, from: PopId, dst_ip: u32) -> Option<Asn> {
        let border = self.pop(from).borders[0];
        let speaker = internet.net.speaker(border)?;
        let (_, cand) = speaker.lookup(dst_ip)?;
        match cand.source {
            RouteSource::Local => None,
            RouteSource::Ebgp { peer_as, .. } => Some(peer_as),
            RouteSource::Ibgp { .. } => {
                // Ask the egress router which eBGP neighbour it selected.
                let egress = cand.attrs.next_hop;
                let es = internet.net.speaker(egress)?;
                let (_, ecand) = es.lookup(dst_ip)?;
                match ecand.source {
                    RouteSource::Ebgp { peer_as, .. } => Some(peer_as),
                    _ => None,
                }
            }
        }
    }

    /// Resolves the data-plane path from PoP `from` to `dst_ip` *through
    /// VNS routing* (internal L2 to the selected egress, then the
    /// Internet).
    pub fn path_via_vns(
        &self,
        internet: &Internet,
        from: PopId,
        dst_ip: u32,
    ) -> Result<ResolvedPath, PathError> {
        let pop = self.pop(from);
        resolve_path(internet, pop.borders[0], pop.city, dst_ip)
    }

    /// Resolves the data-plane path from PoP `from` to `dst_ip` leaving
    /// immediately through the PoP's primary upstream (the paper's
    /// "probes are forced out of VNS immediately at each PoP" and the
    /// "through upstreams" arm of every comparison).
    pub fn path_via_upstream(
        &self,
        internet: &Internet,
        from: PopId,
        dst_ip: u32,
    ) -> Result<ResolvedPath, PathError> {
        let pop = self.pop(from);
        let (up_as, entry_city) = self.pop_upstream[&from];
        let info = internet.as_info(up_as);
        let up_sp = internet
            .router_of(up_as, entry_city)
            .expect("upstream has routers");
        // Access leg: PoP city to the transit port. Same-metro for every
        // PoP except the London misconfiguration, where the port is in
        // Ashburn and the leg is a shared long-haul circuit.
        let km = Internet::city_km(pop.city, entry_city).max(1.0);
        let access = ResolvedHop {
            kind: HopKind::InterAs {
                region: city(entry_city).region,
            },
            from_city: pop.city,
            to_city: entry_city,
            km,
            label: format!(
                "transit-port:{}:{}@{}",
                self.asn,
                info.asn,
                city(entry_city).name
            ),
        };
        let mut rest = resolve_path(internet, up_sp, entry_city, dst_ip)?;
        let mut hops = vec![access];
        hops.append(&mut rest.hops);
        let mut routers = vec![pop.borders[0]];
        routers.append(&mut rest.routers);
        Ok(ResolvedPath { hops, routers })
    }

    /// Resolves the path from PoP `from` to `dst_ip`, leaving through the
    /// PoP's best *local* external route — peer sessions included. This is
    /// the paper's "probes are forced out of VNS immediately at each PoP"
    /// (Secs 4.1 and 5.2): no VNS circuit is used, but the PoP's whole
    /// local table is.
    pub fn path_via_local_exit(
        &self,
        internet: &Internet,
        from: PopId,
        dst_ip: u32,
    ) -> Result<ResolvedPath, PathError> {
        let pop = self.pop(from);
        // Best eBGP-learned candidate across the PoP's border routers.
        let mut best: Option<(vns_bgp::Candidate, SpeakerId)> = None;
        let ctx = vns_bgp::DecisionContext::no_igp();
        for b in pop.borders {
            let Some(sp) = internet.net.speaker(b) else {
                continue;
            };
            let Some((covering, _)) = sp.lookup(dst_ip) else {
                continue;
            };
            let Some(c) = sp.best_external_route(&covering) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((cur, _)) => {
                    vns_bgp::compare_routes(c, cur, &ctx) == std::cmp::Ordering::Greater
                }
            };
            if better {
                best = Some((c.clone(), b));
            }
        }
        let (cand, border) = best.ok_or(PathError::NoRoute(pop.borders[0]))?;
        let RouteSource::Ebgp { peer, .. } = cand.source else {
            return Err(PathError::NoRoute(border));
        };
        // Exit over that session's interconnect.
        let links = internet.links_between(border, peer);
        let &(near, far) = links.first().ok_or(PathError::NoRoute(border))?;
        let mut hops = Vec::new();
        hops.push(ResolvedHop {
            kind: HopKind::InterAs {
                region: city(far).region,
            },
            from_city: near,
            to_city: far,
            km: Internet::city_km(near, far).max(1.0),
            label: format!("exit:{}:{}@{}", self.asn, peer, city(far).name),
        });
        let mut rest = resolve_path(internet, peer, far, dst_ip)?;
        hops.append(&mut rest.hops);
        let mut routers = vec![border];
        routers.append(&mut rest.routers);
        Ok(ResolvedPath { hops, routers })
    }

    /// Where a service request from a host in `src_ip`'s prefix lands:
    /// resolves the path to the anycast relay address and reports the
    /// receiving PoP (the Fig 7 measurement).
    pub fn anycast_landing(
        &self,
        internet: &Internet,
        src_ip: u32,
    ) -> Result<(PopId, ResolvedPath), PathError> {
        let path = resolve_from_prefix(internet, src_ip, self.anycast_address())?;
        let last = *path.routers.last().expect("non-empty path");
        let pop = self.pop_of_router(last).ok_or(PathError::NoRoute(last))?;
        Ok((pop, path))
    }

    /// The media path for a relayed call: caller's last mile → ingress
    /// relay PoP (anycast) → VNS internal → egress PoP nearest the callee
    /// → callee. Returns the concatenated resolved path.
    pub fn media_path(
        &self,
        internet: &Internet,
        caller_ip: u32,
        callee_ip: u32,
    ) -> Result<ResolvedPath, PathError> {
        let (ingress, mut first) = self.anycast_landing(internet, caller_ip)?;
        let rest = self.path_via_vns(internet, ingress, callee_ip)?;
        first.hops.extend(rest.hops);
        first.routers.extend(rest.routers.into_iter().skip(1));
        Ok(first)
    }
}
