//! Scripted hostile control-plane input: the attack library behind the
//! `adversarial` campaign.
//!
//! The paper's design trusts geography-derived signals — GeoIP locations
//! and the geo-cold-potato LOCAL_PREF they produce — plus the ordinary BGP
//! ecosystem around the VNS. Production control planes also ingest hostile
//! input: prefix hijacks, more-specific interceptions, valley-violating
//! route leaks, poisoned geolocation feeds, flap storms and byzantine
//! routers. This module scripts each of those as a deterministic mutation
//! of a converged world, layered on the PR-5 fault machinery
//! ([`crate::fault`]) and the [`vns_geo::GeoIpErrorModel`] poisoning
//! variants.
//!
//! Each [`AttackKind`] names the invariant(s) the two-stage verifier is
//! *expected* to raise ([`AttackKind::expected_invariants`], as
//! `vns_verify::Invariant::code()` strings — `vns-core` deliberately does
//! not depend on `vns-verify`). The bench campaign launches every attack
//! on a fresh world, reconverges incrementally, measures data-plane damage
//! and records which invariants actually fired — the detection matrix with
//! its measured catch rate.

use std::collections::BTreeMap;
use std::sync::Arc;

use vns_bgp::{
    ConvergenceError, ConvergenceStats, PeerConfig, PeerKind, Policy, Prefix, Relation, Speaker,
    SpeakerId,
};
use vns_geo::cities::city_by_name;
use vns_geo::{city, GeoIpErrorModel, GeoPoint, Region};
use vns_topo::{AsId, AsInfo, AsType, Internet};

use crate::config::RoutingMode;
use crate::fault::{FaultError, FaultInjector, FaultPlan};
use crate::georr::GeoHook;
use crate::service::Vns;

/// Where the synthetic malicious AS homes: far from the EU/NA client mass
/// so hijacked traffic visibly detours and interception skews anycast
/// landings past the tail-fraction bound.
pub const ATTACKER_HOME: &str = "Sydney";

/// PoPs whose primary upstream sessions the default flap storm batters.
pub const FLAP_STORM_POPS: [&str; 3] = ["AMS", "SJS", "SIN"];

/// Cut/restore cycles per flapped session in the default storm (burst rate
/// = sessions × cycles events; [`flap_storm`] takes both as parameters).
pub const FLAP_STORM_CYCLES: usize = 3;

/// One scripted attack from the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackKind {
    /// A malicious stub AS originates the exact VNS anycast /16 into its
    /// transit provider. ASes that prefer the forged route forward media
    /// to a router with no covering route — a blackhole.
    AnycastExactHijack,
    /// The stub announces a more-specific /20 inside the anycast /16 and
    /// forges a registry entry claiming ownership. Longest-match steers
    /// every client to the attacker, which terminates the intercepted
    /// flows itself — anycast landings collapse onto one rogue site.
    AnycastInterception,
    /// The stub originates an existing external last-mile /16 (a classic
    /// full-prefix hijack of someone else's eyeball space).
    LastMileHijack,
    /// A multihomed stub leaks provider-learned routes across a peering
    /// session it misdeclares as a customer link — the Gao–Rexford valley.
    RouteLeak,
    /// The GeoIP feed itself is poisoned (every Europe-registered prefix
    /// relocated to Asia-Pacific) but no route refresh happens: converged
    /// RIB preferences no longer match the current database.
    GeoPoisonDb,
    /// The reflectors *ingest* a region-swapped GeoIP snapshot and refresh
    /// all routes: the control plane reconverges on poisoned geography
    /// while ground truth is unchanged.
    GeoPoisonIngested,
    /// The reflectors ingest a snapshot in which every reported location
    /// was dragged most of the way to the attacker's home — the gradual
    /// adversarial-shift variant of feed poisoning.
    GeoShiftIngested,
    /// eBGP flap storm: primary upstream sessions of several PoPs cut and
    /// restored in bursts. Ends fully restored — the converged-state
    /// verifier is expected to stay silent (a documented blind spot).
    FlapStorm,
    /// Two byzantine borders in one PoP silently rewrite their selected
    /// route for a victim prefix to point at each other: a forged
    /// forwarding cycle.
    ByzantineLoop,
    /// A byzantine egress border silently drops its selected route while
    /// the rest of the AS keeps forwarding through it.
    ByzantineBlackhole,
}

impl AttackKind {
    /// The whole scripted corpus, in campaign order.
    pub const ALL: [AttackKind; 10] = [
        AttackKind::AnycastExactHijack,
        AttackKind::AnycastInterception,
        AttackKind::LastMileHijack,
        AttackKind::RouteLeak,
        AttackKind::GeoPoisonDb,
        AttackKind::GeoPoisonIngested,
        AttackKind::GeoShiftIngested,
        AttackKind::FlapStorm,
        AttackKind::ByzantineLoop,
        AttackKind::ByzantineBlackhole,
    ];

    /// Stable label (artefact key and RNG stream name).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::AnycastExactHijack => "anycast-exact-hijack",
            AttackKind::AnycastInterception => "anycast-interception",
            AttackKind::LastMileHijack => "lastmile-hijack",
            AttackKind::RouteLeak => "route-leak",
            AttackKind::GeoPoisonDb => "geoip-poison-db",
            AttackKind::GeoPoisonIngested => "geoip-poison-ingested",
            AttackKind::GeoShiftIngested => "geoip-shift-ingested",
            AttackKind::FlapStorm => "ebgp-flap-storm",
            AttackKind::ByzantineLoop => "byzantine-loop",
            AttackKind::ByzantineBlackhole => "byzantine-blackhole",
        }
    }

    /// `vns_verify::Invariant::code()` strings the verifier is expected to
    /// raise for this attack on a geo-mode world. Empty for attacks the
    /// converged-state verifier cannot see (the flap storm ends restored).
    pub fn expected_invariants(self) -> &'static [&'static str] {
        match self {
            AttackKind::AnycastExactHijack
            | AttackKind::LastMileHijack
            | AttackKind::ByzantineBlackhole => &["NO-BLACKHOLE"],
            AttackKind::AnycastInterception => &["ANYCAST-NEAREST"],
            AttackKind::RouteLeak => &["VALLEY-FREE"],
            AttackKind::GeoPoisonDb
            | AttackKind::GeoPoisonIngested
            | AttackKind::GeoShiftIngested => &["GEO-PREF"],
            AttackKind::FlapStorm => &[],
            AttackKind::ByzantineLoop => &["LOOP-FREE"],
        }
    }

    /// One-line description for the artefact.
    pub fn description(self) -> &'static str {
        match self {
            AttackKind::AnycastExactHijack => "malicious stub originates the exact VNS anycast /16",
            AttackKind::AnycastInterception => {
                "malicious stub announces a forged-registry more-specific /20 \
                 inside the anycast /16 and terminates the flows (interception)"
            }
            AttackKind::LastMileHijack => {
                "malicious stub originates an existing external last-mile /16"
            }
            AttackKind::RouteLeak => {
                "multihomed stub leaks provider-learned routes across a \
                 peering session misdeclared as customer"
            }
            AttackKind::GeoPoisonDb => {
                "GeoIP feed poisoned (Europe region-swapped to Asia-Pacific) \
                 with no route refresh: RIBs stale against the database"
            }
            AttackKind::GeoPoisonIngested => {
                "reflectors ingest a region-swapped GeoIP snapshot and \
                 refresh all routes"
            }
            AttackKind::GeoShiftIngested => {
                "reflectors ingest a snapshot with every location dragged \
                 toward the attacker's home"
            }
            AttackKind::FlapStorm => {
                "primary upstream sessions of three PoPs flap in bursts, \
                 ending fully restored"
            }
            AttackKind::ByzantineLoop => {
                "two byzantine borders point their selected route for a \
                 victim prefix at each other"
            }
            AttackKind::ByzantineBlackhole => {
                "byzantine egress border silently drops its selected route \
                 for a victim prefix"
            }
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an attack could not be staged on this world.
#[derive(Debug)]
pub enum AttackError {
    /// The world lacks a viable target (e.g. no external last-mile prefix,
    /// no IXP peer to leak across).
    NoTarget(&'static str),
    /// Reconvergence after the attack failed.
    Convergence(ConvergenceError),
    /// The fault machinery refused an event (flap storm).
    Fault(FaultError),
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::NoTarget(what) => write!(f, "no attack target: {what}"),
            AttackError::Convergence(e) => write!(f, "reconvergence failed: {e}"),
            AttackError::Fault(e) => write!(f, "fault injection failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<ConvergenceError> for AttackError {
    fn from(e: ConvergenceError) -> Self {
        AttackError::Convergence(e)
    }
}

impl From<FaultError> for AttackError {
    fn from(e: FaultError) -> Self {
        AttackError::Fault(e)
    }
}

/// What a launched attack did to the world (control-plane accounting; the
/// campaign adds data-plane damage and verifier findings).
#[derive(Debug, Clone)]
pub struct LaunchedAttack {
    /// Which attack ran.
    pub kind: AttackKind,
    /// Human-readable account of the concrete staging (victim, attacker,
    /// sessions touched).
    pub detail: String,
    /// The hijacked / corrupted prefix, when the attack has one.
    pub victim_prefix: Option<Prefix>,
    /// The synthetic malicious speaker, when one was spawned.
    pub attacker: Option<SpeakerId>,
    /// Discrete adversarial actions applied (originations, session events,
    /// corruptions, poisonings).
    pub events: usize,
    /// Aggregated reconvergence work across every incremental run.
    pub stats: ConvergenceStats,
    /// Whether the control plane was quiescent after the final run.
    pub quiescent: bool,
}

/// Stages one attack against a converged world and reconverges. The world
/// is mutated in place; `seed` drives any poisoning randomness so repeated
/// launches are byte-identical.
pub fn launch(
    kind: AttackKind,
    internet: &mut Internet,
    vns: &Vns,
    seed: u64,
) -> Result<LaunchedAttack, AttackError> {
    match kind {
        AttackKind::AnycastExactHijack => anycast_exact_hijack(internet, vns),
        AttackKind::AnycastInterception => anycast_interception(internet, vns),
        AttackKind::LastMileHijack => lastmile_hijack(internet, vns),
        AttackKind::RouteLeak => route_leak(internet, vns),
        AttackKind::GeoPoisonDb => geo_poison_db(internet, vns, seed),
        AttackKind::GeoPoisonIngested => geo_poison_ingested(internet, vns, seed),
        AttackKind::GeoShiftIngested => geo_shift_ingested(internet, vns),
        AttackKind::FlapStorm => flap_storm(internet, vns, &FLAP_STORM_POPS, FLAP_STORM_CYCLES),
        AttackKind::ByzantineLoop => byzantine_loop(internet, vns),
        AttackKind::ByzantineBlackhole => byzantine_blackhole(internet, vns),
    }
}

/// Registers a synthetic malicious stub AS homed at [`ATTACKER_HOME`] as a
/// customer of the VNS's most-preferred upstream, with a full initial
/// table transfer scheduled (the attacker needs covering routes to forward
/// intercepted traffic onward). Returns `(asn, speaker)`; the caller runs
/// the net.
pub fn spawn_malicious_as(
    internet: &mut Internet,
    vns: &Vns,
) -> Result<(vns_bgp::Asn, SpeakerId), AttackError> {
    let (home, _) = city_by_name(ATTACKER_HOME).ok_or(AttackError::NoTarget(
        "attacker home city missing from table",
    ))?;
    let provider_as: AsId = *vns
        .upstreams()
        .first()
        .ok_or(AttackError::NoTarget("VNS has no upstream providers"))?;
    let provider_sp = internet
        .router_of(provider_as, home)
        .ok_or(AttackError::NoTarget("upstream provider has no routers"))?;
    let provider_city = internet.city_of_router(provider_sp).unwrap_or(home);

    let asn = internet.alloc_asn();
    let sp_id = internet.alloc_speaker_id();
    let mut sp = Speaker::new(sp_id, asn);
    sp.set_best_external(false);
    internet.net.add_speaker(sp);
    internet.add_as(AsInfo {
        id: internet.next_as_id(),
        asn,
        ty: AsType::Ec,
        region: city(home).region,
        home_city: home,
        presence: vec![home],
        speaker: Some(sp_id),
        routers: vec![(home, sp_id)],
        prefixes: vec![],
        dedicated: false,
        igp: None,
    });
    internet
        .net
        .connect_ebgp(sp_id, provider_sp, Relation::Provider, Policy::GaoRexford);
    internet.record_link(sp_id, home, provider_sp, provider_city);
    let km = Internet::city_km(home, provider_city) as u64;
    if let Some(s) = internet.net.speaker_mut(sp_id) {
        s.set_session_cost(provider_sp, km);
        s.schedule_initial_advertisement();
    }
    if let Some(s) = internet.net.speaker_mut(provider_sp) {
        s.set_session_cost(sp_id, km);
        s.schedule_initial_advertisement();
    }
    Ok((asn, sp_id))
}

/// Incremental reconvergence; accumulates work into `stats` and reports
/// quiescence.
fn settle(
    internet: &mut Internet,
    vns: &Vns,
    stats: &mut ConvergenceStats,
) -> Result<bool, AttackError> {
    let s = internet.net.run(vns.message_budget())?;
    stats.activations += s.activations;
    stats.messages += s.messages;
    Ok(internet.net.is_quiescent())
}

fn anycast_exact_hijack(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    let (asn, attacker) = spawn_malicious_as(internet, vns)?;
    let pfx = vns.anycast_prefix();
    internet.net.originate(attacker, pfx);
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok(LaunchedAttack {
        kind: AttackKind::AnycastExactHijack,
        detail: format!(
            "AS{} at {ATTACKER_HOME} originates the exact VNS anycast {pfx} \
             into its transit provider",
            asn.0
        ),
        victim_prefix: Some(pfx),
        attacker: Some(attacker),
        events: 1,
        stats,
        quiescent,
    })
}

fn anycast_interception(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    let (asn, attacker) = spawn_malicious_as(internet, vns)?;
    let base = vns.anycast_prefix();
    // Sub-prefix interception with registry cover: the attacker announces
    // a more-specific of the anycast block *and* forges a registry entry
    // claiming ownership, so intercepted flows terminate at its own
    // infrastructure instead of blackholing. The forged entry shadows the
    // anycast /16's representative host out of the forwarding analysis —
    // which is precisely what ANYCAST-NEAREST flags.
    let more = Prefix::new(base.addr(), 20);
    let as_id = internet
        .as_of_speaker(attacker)
        .ok_or(AttackError::NoTarget("attacker AS not registered"))?;
    let home = internet.as_info(as_id).home_city;
    let location = city(home).location;
    let country = city(home).country.to_string();
    internet.add_prefix(
        vns_topo::PrefixInfo {
            prefix: more,
            origin: as_id,
            city: home,
            location,
            last_mile: false,
            anycast: false,
        },
        &country,
        location,
    );
    internet.net.originate(attacker, more);
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok(LaunchedAttack {
        kind: AttackKind::AnycastInterception,
        detail: format!(
            "AS{} at {ATTACKER_HOME} announces {more}, a forged-registry \
             more-specific of the VNS anycast {base}, terminating \
             intercepted flows at its own infrastructure",
            asn.0
        ),
        victim_prefix: Some(more),
        attacker: Some(attacker),
        events: 1,
        stats,
        quiescent,
    })
}

fn lastmile_hijack(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    let victim = internet
        .prefixes()
        .find(|p| p.last_mile && p.origin != vns.as_id())
        .map(|p| p.prefix)
        .ok_or(AttackError::NoTarget("no external last-mile prefix"))?;
    let (asn, attacker) = spawn_malicious_as(internet, vns)?;
    internet.net.originate(attacker, victim);
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok(LaunchedAttack {
        kind: AttackKind::LastMileHijack,
        detail: format!(
            "AS{} at {ATTACKER_HOME} originates {victim}, an external \
             eyeball prefix it does not own",
            asn.0
        ),
        victim_prefix: Some(victim),
        attacker: Some(attacker),
        events: 1,
        stats,
        quiescent,
    })
}

fn route_leak(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    let (asn, attacker) = spawn_malicious_as(internet, vns)?;
    // Second leg: a session with one of the VNS's IXP peers that the peer
    // declares as settlement-free peering but the stub misdeclares as a
    // customer link. The stub's export filter then happily floods its
    // provider-learned table across — the Gao–Rexford valley. Because the
    // peer only advertises its customer cone back, the stub's best routes
    // for the rest of the table stay provider-learned, so the leak is
    // substantive, not an echo.
    let peer_as: AsId = *vns
        .peers()
        .first()
        .ok_or(AttackError::NoTarget("VNS has no IXP peers to leak across"))?;
    let (home, _) = city_by_name(ATTACKER_HOME).ok_or(AttackError::NoTarget(
        "attacker home city missing from table",
    ))?;
    let peer_sp = internet
        .router_of(peer_as, home)
        .ok_or(AttackError::NoTarget("peer AS has no routers"))?;
    let peer_city = internet.city_of_router(peer_sp).unwrap_or(home);
    let peer_asn = internet.as_info(peer_as).asn;
    internet.net.connect(
        attacker,
        PeerConfig {
            kind: PeerKind::Ebgp {
                peer_as: peer_asn,
                relation: Relation::Customer,
            },
            import: Policy::GaoRexford,
        },
        peer_sp,
        PeerConfig {
            kind: PeerKind::Ebgp {
                peer_as: asn,
                relation: Relation::Peer,
            },
            import: Policy::GaoRexford,
        },
    );
    internet.record_link(attacker, home, peer_sp, peer_city);
    for id in [attacker, peer_sp] {
        if let Some(s) = internet.net.speaker_mut(id) {
            s.schedule_initial_advertisement();
        }
    }
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok(LaunchedAttack {
        kind: AttackKind::RouteLeak,
        detail: format!(
            "multihomed stub AS{} leaks its provider-learned table to \
             AS{} across a peering session misdeclared as customer",
            asn.0, peer_asn.0
        ),
        victim_prefix: None,
        attacker: Some(attacker),
        events: 2,
        stats,
        quiescent,
    })
}

/// The region-swap poisoning every GeoIP attack uses: prefixes registered
/// in Europe get relocated to random Asia-Pacific cities.
fn region_swap() -> GeoIpErrorModel {
    GeoIpErrorModel::RegionSwap {
        from: Region::Europe,
        to: Region::AsiaPacific,
    }
}

fn geo_poison_db(
    internet: &mut Internet,
    vns: &Vns,
    seed: u64,
) -> Result<LaunchedAttack, AttackError> {
    internet.geoip.apply_error_model(&region_swap(), seed);
    let detail = if vns.mode() == RoutingMode::GeoColdPotato {
        "live GeoIP database region-swapped (Europe → Asia-Pacific) with no \
         route refresh: converged preferences are stale against the feed"
            .to_string()
    } else {
        "live GeoIP database region-swapped, but hot-potato routing never \
         consults it — the poison is inert"
            .to_string()
    };
    Ok(LaunchedAttack {
        kind: AttackKind::GeoPoisonDb,
        detail,
        victim_prefix: None,
        attacker: None,
        events: 1,
        stats: ConvergenceStats::default(),
        quiescent: internet.net.is_quiescent(),
    })
}

/// Installs fresh reflector hooks over `snapshot` (the build-time wiring
/// with a different database) and refreshes every border session so the
/// whole control plane reconverges on the poisoned geography.
fn ingest_snapshot(
    internet: &mut Internet,
    vns: &Vns,
    snapshot: vns_geo::GeoIpDb<Prefix>,
) -> Result<(ConvergenceStats, bool, usize), AttackError> {
    let snapshot = Arc::new(snapshot);
    let mut locations = BTreeMap::new();
    let mut pops = BTreeMap::new();
    for pop in vns.pops() {
        for b in pop.borders {
            locations.insert(b, pop.location());
            pops.insert(b, pop.id());
        }
    }
    let locations = Arc::new(locations);
    let pops = Arc::new(pops);
    let mut events = 0;
    for rr in vns.reflectors() {
        let hook = GeoHook::new(
            Arc::clone(&snapshot),
            Arc::clone(&locations),
            Arc::clone(&pops),
            vns.lp_fn(),
            Arc::clone(vns.overrides()),
        );
        if let Some(s) = internet.net.speaker_mut(rr) {
            s.set_import_hook(Box::new(hook));
            events += 1;
        }
    }
    let borders: Vec<SpeakerId> = vns.pops().iter().flat_map(|p| p.borders).collect();
    for b in borders {
        if let Some(s) = internet.net.speaker_mut(b) {
            s.request_refresh_all();
        }
    }
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok((stats, quiescent, events))
}

fn geo_poison_ingested(
    internet: &mut Internet,
    vns: &Vns,
    seed: u64,
) -> Result<LaunchedAttack, AttackError> {
    if vns.mode() != RoutingMode::GeoColdPotato {
        return Ok(LaunchedAttack {
            kind: AttackKind::GeoPoisonIngested,
            detail: "hot-potato deployment installs no geo hook; there is \
                     nothing to poison"
                .to_string(),
            victim_prefix: None,
            attacker: None,
            events: 0,
            stats: ConvergenceStats::default(),
            quiescent: internet.net.is_quiescent(),
        });
    }
    let mut poisoned = internet.geoip.clone();
    poisoned.apply_error_model(&region_swap(), seed);
    let (stats, quiescent, events) = ingest_snapshot(internet, vns, poisoned)?;
    Ok(LaunchedAttack {
        kind: AttackKind::GeoPoisonIngested,
        detail: "reflectors ingested a region-swapped GeoIP snapshot \
                 (Europe → Asia-Pacific) and refreshed every border: RIB \
                 preferences now disagree with the clean database"
            .to_string(),
        victim_prefix: None,
        attacker: None,
        events,
        stats,
        quiescent,
    })
}

fn geo_shift_ingested(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    if vns.mode() != RoutingMode::GeoColdPotato {
        return Ok(LaunchedAttack {
            kind: AttackKind::GeoShiftIngested,
            detail: "hot-potato deployment installs no geo hook; there is \
                     nothing to poison"
                .to_string(),
            victim_prefix: None,
            attacker: None,
            events: 0,
            stats: ConvergenceStats::default(),
            quiescent: internet.net.is_quiescent(),
        });
    }
    let target: GeoPoint =
        city_by_name(ATTACKER_HOME)
            .map(|(_, c)| c.location)
            .ok_or(AttackError::NoTarget(
                "attacker home city missing from table",
            ))?;
    let mut poisoned = internet.geoip.clone();
    poisoned.apply_error_model(
        &GeoIpErrorModel::AdversarialShift {
            target,
            weight: 0.85,
        },
        0, // the shift is deterministic; the seed is unused entropy
    );
    let (stats, quiescent, events) = ingest_snapshot(internet, vns, poisoned)?;
    Ok(LaunchedAttack {
        kind: AttackKind::GeoShiftIngested,
        detail: format!(
            "reflectors ingested a snapshot with every reported location \
             dragged 85% of the way to {ATTACKER_HOME} and refreshed every \
             border"
        ),
        victim_prefix: None,
        attacker: None,
        events,
        stats,
        quiescent,
    })
}

/// eBGP flap storm with a configurable burst: for each PoP code, the
/// primary upstream session of border 0 is cut and restored `cycles`
/// times, reconverging after every event. Ends fully restored.
pub fn flap_storm(
    internet: &mut Internet,
    vns: &Vns,
    pop_codes: &[&str],
    cycles: usize,
) -> Result<LaunchedAttack, AttackError> {
    let mut inj = FaultInjector::new();
    let mut stats = ConvergenceStats::default();
    let mut events = 0;
    let mut quiescent = true;
    let mut flapped = Vec::new();
    for code in pop_codes {
        let pop = vns
            .pop_by_code(code)
            .ok_or(AttackError::NoTarget("unknown PoP code in flap storm"))?;
        let border = pop.borders[0];
        let (up_as, entry_city) = vns.primary_upstream(pop.id());
        let upstream = internet
            .router_of(up_as, entry_city)
            .ok_or(AttackError::NoTarget("primary upstream has no routers"))?;
        let plan = FaultPlan::session_flap(format!("storm:{code}"), border, upstream, cycles);
        for step in plan.steps {
            inj.apply(internet, vns, step)?;
            events += 1;
            quiescent &= settle(internet, vns, &mut stats)?;
        }
        flapped.push(*code);
    }
    debug_assert!(inj.fully_restored(), "storm must end fully restored");
    Ok(LaunchedAttack {
        kind: AttackKind::FlapStorm,
        detail: format!(
            "primary upstream sessions at {} flapped {cycles}× each \
             ({events} events), all restored",
            flapped.join("/")
        ),
        victim_prefix: None,
        attacker: None,
        events,
        stats,
        quiescent,
    })
}

/// First external last-mile prefix for which `want` holds.
fn pick_external_lastmile(
    internet: &Internet,
    vns: &Vns,
    mut want: impl FnMut(&Internet, Prefix) -> bool,
) -> Option<Prefix> {
    internet
        .prefixes()
        .filter(|p| p.last_mile && p.origin != vns.as_id())
        .map(|p| p.prefix)
        .find(|&p| want(internet, p))
}

fn byzantine_loop(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    let pop = vns
        .pop_by_code("AMS")
        .ok_or(AttackError::NoTarget("AMS PoP missing"))?;
    let [b0, b1] = pop.borders;
    let victim = pick_external_lastmile(internet, vns, |net, p| {
        net.net.speaker(b0).and_then(|s| s.best(&p)).is_some()
            && net.net.speaker(b1).and_then(|s| s.best(&p)).is_some()
    })
    .ok_or(AttackError::NoTarget(
        "no external last-mile prefix routed at both AMS borders",
    ))?;
    for (at, to) in [(b0, b1), (b1, b0)] {
        let ok = internet
            .net
            .speaker_mut(at)
            .is_some_and(|s| s.corrupt_redirect_ibgp(&victim, to));
        if !ok {
            return Err(AttackError::NoTarget("loop corruption site unusable"));
        }
    }
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok(LaunchedAttack {
        kind: AttackKind::ByzantineLoop,
        detail: format!(
            "AMS borders {b0} and {b1} silently rewrote their selected \
             route for {victim} to point at each other"
        ),
        victim_prefix: Some(victim),
        attacker: Some(b0),
        events: 2,
        stats,
        quiescent,
    })
}

fn byzantine_blackhole(internet: &mut Internet, vns: &Vns) -> Result<LaunchedAttack, AttackError> {
    let rr0 = vns.reflectors()[0];
    // Victim: a prefix the reflector routes via some egress border — that
    // border is downstream of every other VNS router for this prefix, so
    // dropping its route blackholes the AS interior.
    let mut egress = None;
    let victim = pick_external_lastmile(internet, vns, |net, p| {
        match net.net.speaker(rr0).and_then(|s| s.best(&p)) {
            Some(cand) => {
                egress = Some(cand.attrs.next_hop);
                true
            }
            None => false,
        }
    })
    .ok_or(AttackError::NoTarget(
        "no external last-mile prefix routed at the reflector",
    ))?;
    let egress = egress.ok_or(AttackError::NoTarget("reflector best has no next hop"))?;
    let ok = internet
        .net
        .speaker_mut(egress)
        .is_some_and(|s| s.corrupt_drop_route(&victim));
    if !ok {
        return Err(AttackError::NoTarget(
            "egress border holds no route to drop",
        ));
    }
    let mut stats = ConvergenceStats::default();
    let quiescent = settle(internet, vns, &mut stats)?;
    Ok(LaunchedAttack {
        kind: AttackKind::ByzantineBlackhole,
        detail: format!(
            "egress border {egress} silently dropped its selected route \
             for {victim} while the AS keeps forwarding through it"
        ),
        victim_prefix: Some(victim),
        attacker: Some(egress),
        events: 1,
        stats,
        quiescent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vns_bgp::RouteSource;
    use vns_topo::{generate, TopoConfig};

    use crate::build::build_vns;
    use crate::config::VnsConfig;

    fn tiny_world(seed: u64) -> (Internet, Vns) {
        let mut internet = generate(&TopoConfig::tiny(seed)).unwrap();
        let vns = build_vns(&mut internet, &VnsConfig::default()).unwrap();
        (internet, vns)
    }

    #[test]
    fn corpus_is_complete_and_uniquely_named() {
        let names: std::collections::BTreeSet<_> =
            AttackKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AttackKind::ALL.len());
        // Expected invariants stay within the verifier's published codes.
        let known = [
            "VALLEY-FREE",
            "HIDDEN-ROUTE",
            "GEO-PREF",
            "LOOP-FREE",
            "NO-BLACKHOLE",
            "ANYCAST-NEAREST",
        ];
        for kind in AttackKind::ALL {
            for code in kind.expected_invariants() {
                assert!(known.contains(code), "{kind}: unknown invariant {code}");
            }
        }
        // Every invariant named by the issue is expected by some attack.
        for code in ["VALLEY-FREE", "GEO-PREF", "LOOP-FREE", "NO-BLACKHOLE"] {
            assert!(
                AttackKind::ALL
                    .iter()
                    .any(|k| k.expected_invariants().contains(&code)),
                "no attack expects {code}"
            );
        }
    }

    #[test]
    fn exact_hijack_converges_with_forged_origin() {
        let (mut internet, vns) = tiny_world(7);
        let hit = launch(AttackKind::AnycastExactHijack, &mut internet, &vns, 7).unwrap();
        assert!(hit.quiescent);
        let attacker = hit.attacker.unwrap();
        let best = internet
            .net
            .speaker(attacker)
            .unwrap()
            .best(&vns.anycast_prefix())
            .unwrap();
        assert!(matches!(best.source, RouteSource::Local));
        // The forged origin must have propagated beyond the attacker.
        assert!(hit.stats.messages > 0);
    }

    #[test]
    fn interception_keeps_a_covering_route() {
        let (mut internet, vns) = tiny_world(8);
        let hit = launch(AttackKind::AnycastInterception, &mut internet, &vns, 8).unwrap();
        assert!(hit.quiescent);
        let attacker = hit.attacker.unwrap();
        let sp = internet.net.speaker(attacker).unwrap();
        // The /20 is locally originated; the covering /16 was learned from
        // the provider, so intercepted traffic can flow onward.
        assert!(matches!(
            sp.best(&hit.victim_prefix.unwrap()).unwrap().source,
            RouteSource::Local
        ));
        assert!(matches!(
            sp.best(&vns.anycast_prefix()).unwrap().source,
            RouteSource::Ebgp { .. }
        ));
    }

    #[test]
    fn route_leak_plants_a_valley() {
        let (mut internet, vns) = tiny_world(9);
        if vns.peers().is_empty() {
            return; // tiny worlds may lack IXP peers; campaign worlds don't
        }
        let hit = launch(AttackKind::RouteLeak, &mut internet, &vns, 9).unwrap();
        assert!(hit.quiescent);
        let attacker = hit.attacker.unwrap();
        // Some prefix in the peer's Adj-RIB-In from the attacker must be
        // provider-learned at the attacker — the valley the verifier flags.
        let valley = internet.net.speaker_ids().any(|id| {
            let Some(sp) = internet.net.speaker(id) else {
                return false;
            };
            sp.adj_rib_in_entries().any(|(prefix, from, _)| {
                from == attacker
                    && internet
                        .net
                        .speaker(attacker)
                        .and_then(|a| a.best(&prefix))
                        .is_some_and(|b| {
                            matches!(
                                b.source,
                                RouteSource::Ebgp {
                                    relation: Relation::Provider,
                                    ..
                                }
                            )
                        })
            })
        });
        assert!(valley, "leak left no provider-learned route at a peer");
    }

    #[test]
    fn flap_storm_ends_restored_and_quiescent() {
        let (mut internet, vns) = tiny_world(10);
        let hit = launch(AttackKind::FlapStorm, &mut internet, &vns, 10).unwrap();
        assert!(hit.quiescent);
        assert_eq!(hit.events, FLAP_STORM_POPS.len() * FLAP_STORM_CYCLES * 2);
        assert!(hit.stats.messages > 0);
    }

    #[test]
    fn ingested_poison_changes_reflector_preferences() {
        let (mut internet, vns) = tiny_world(11);
        // Snapshot reflector Adj-RIB-In preferences before the attack.
        let rr = vns.reflectors()[0];
        let before: Vec<u32> = internet
            .net
            .speaker(rr)
            .unwrap()
            .adj_rib_in_entries()
            .map(|(_, _, c)| c.attrs.local_pref)
            .collect();
        let hit = launch(AttackKind::GeoPoisonIngested, &mut internet, &vns, 11).unwrap();
        assert!(hit.quiescent);
        let after: Vec<u32> = internet
            .net
            .speaker(rr)
            .unwrap()
            .adj_rib_in_entries()
            .map(|(_, _, c)| c.attrs.local_pref)
            .collect();
        assert_ne!(before, after, "poisoned ingest left every pref unchanged");
        // Ground truth (the registry's own database) was not touched.
        let clean = tiny_world(11).0;
        assert_eq!(clean.geoip.len(), internet.geoip.len());
    }

    #[test]
    fn byzantine_corruptions_survive_reconvergence() {
        let (mut internet, vns) = tiny_world(12);
        let hit = launch(AttackKind::ByzantineLoop, &mut internet, &vns, 12).unwrap();
        assert!(hit.quiescent);
        let victim = hit.victim_prefix.unwrap();
        let pop = vns.pop_by_code("AMS").unwrap();
        let [b0, b1] = pop.borders;
        let nh0 = internet.net.speaker(b0).unwrap().best(&victim).unwrap();
        let nh1 = internet.net.speaker(b1).unwrap().best(&victim).unwrap();
        assert_eq!(nh0.attrs.next_hop, b1);
        assert_eq!(nh1.attrs.next_hop, b0);

        let (mut internet, vns) = tiny_world(13);
        let hit = launch(AttackKind::ByzantineBlackhole, &mut internet, &vns, 13).unwrap();
        assert!(hit.quiescent);
        let victim = hit.victim_prefix.unwrap();
        let egress = hit.attacker.unwrap();
        assert!(internet
            .net
            .speaker(egress)
            .unwrap()
            .best(&victim)
            .is_none());
    }
}
