//! The management interface (Sec 3.2, "Overriding Geo-routing").
//!
//! Two failure modes make pure geo-routing pick wrong exits: routing
//! policy can make the geographically closest PoP not the delay-closest,
//! and a prefix's subnets can be geographically spread. The paper's
//! management interface "communicates with the Quagga-RR and border
//! routers" to (a) force a different exit PoP, (b) exempt a prefix from
//! geo-routing entirely, and (c) statically advertise remote more-specific
//! subnets from their closest PoP, tagged `NO_EXPORT`.
//!
//! [`Overrides`] is the shared state the [`crate::GeoHook`] consults; the
//! apply-functions here push the change through the control plane (route
//! refresh from the clients so the reflectors re-transform, then
//! reconvergence).

use std::collections::{BTreeMap, BTreeSet};

use vns_bgp::{Community, ConvergenceError, Prefix};
use vns_topo::Internet;

use crate::pops::PopId;
use crate::service::Vns;

/// Live override table.
#[derive(Debug, Default, Clone)]
pub struct Overrides {
    exempt: BTreeSet<Prefix>,
    forced: BTreeMap<Prefix, PopId>,
}

impl Overrides {
    /// Marks a prefix exempt from geo-routing.
    pub fn exempt(&mut self, prefix: Prefix) {
        self.exempt.insert(prefix);
        self.forced.remove(&prefix);
    }

    /// Forces a prefix's exit PoP.
    pub fn force_exit(&mut self, prefix: Prefix, pop: PopId) {
        self.forced.insert(prefix, pop);
        self.exempt.remove(&prefix);
    }

    /// Clears any override on a prefix.
    pub fn clear(&mut self, prefix: &Prefix) {
        self.exempt.remove(prefix);
        self.forced.remove(prefix);
    }

    /// Whether the prefix is exempt.
    pub fn is_exempt(&self, prefix: &Prefix) -> bool {
        self.exempt.contains(prefix)
    }

    /// The forced exit PoP, if any.
    pub fn forced_exit(&self, prefix: &Prefix) -> Option<PopId> {
        self.forced.get(prefix).copied()
    }

    /// Number of active overrides.
    pub fn len(&self) -> usize {
        self.exempt.len() + self.forced.len()
    }

    /// True when no overrides are active.
    pub fn is_empty(&self) -> bool {
        self.exempt.is_empty() && self.forced.is_empty()
    }

    /// Exempted prefixes in address order (for auditing — `vns-verify`'s
    /// override-sanity check walks the whole table).
    pub fn exempt_prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.exempt.iter().copied()
    }

    /// Forced exits as `(prefix, pop)` in address order.
    pub fn forced_exits(&self) -> impl Iterator<Item = (Prefix, PopId)> + '_ {
        self.forced.iter().map(|(p, pop)| (*p, *pop))
    }

    /// Fault injection for verifier tests: puts `prefix` in *both* the
    /// exempt set and the forced map, violating the mutual exclusion that
    /// [`Overrides::exempt`]/[`Overrides::force_exit`] maintain. Exists so
    /// tests can prove `vns-verify` catches a corrupted table; never call
    /// it from operational code.
    #[doc(hidden)]
    pub fn inject_inconsistent_for_test(&mut self, prefix: Prefix, pop: PopId) {
        self.exempt.insert(prefix);
        self.forced.insert(prefix, pop);
    }
}

impl Vns {
    /// Forces `prefix` to exit at `pop` and reconverges.
    pub fn mgmt_force_exit(
        &self,
        internet: &mut Internet,
        prefix: Prefix,
        pop: PopId,
    ) -> Result<(), ConvergenceError> {
        self.overrides()
            .write()
            .expect("overrides lock poisoned")
            .force_exit(prefix, pop);
        self.refresh_and_run(internet)
    }

    /// Exempts `prefix` from geo-routing and reconverges.
    pub fn mgmt_exempt(
        &self,
        internet: &mut Internet,
        prefix: Prefix,
    ) -> Result<(), ConvergenceError> {
        self.overrides()
            .write()
            .expect("overrides lock poisoned")
            .exempt(prefix);
        self.refresh_and_run(internet)
    }

    /// Clears overrides on `prefix` and reconverges.
    pub fn mgmt_clear(
        &self,
        internet: &mut Internet,
        prefix: Prefix,
    ) -> Result<(), ConvergenceError> {
        self.overrides()
            .write()
            .expect("overrides lock poisoned")
            .clear(&prefix);
        self.refresh_and_run(internet)
    }

    /// Statically advertises `more_specific` from PoP `pop`, tagged
    /// `NO_EXPORT` so it never leaks outside VNS (Sec 3.2: remote subnets
    /// of a mostly-regional prefix are steered to their own closest PoP,
    /// "given that it has a route to the less-specific prefix").
    pub fn mgmt_inject_more_specific(
        &self,
        internet: &mut Internet,
        more_specific: Prefix,
        pop: PopId,
    ) -> Result<(), ConvergenceError> {
        let borders = self.pop(pop).borders;
        for b in borders {
            let speaker = internet
                .net
                .speaker_mut(b)
                .expect("VNS border router registered");
            speaker.originate_with(more_specific, vec![Community::NoExport]);
        }
        internet.net.run(self.message_budget()).map(|_| ())
    }

    /// Requests route refresh from every border router and reconverges —
    /// how override changes reach the reflectors' import hook.
    fn refresh_and_run(&self, internet: &mut Internet) -> Result<(), ConvergenceError> {
        for pop in self.pops() {
            for b in pop.borders {
                internet
                    .net
                    .speaker_mut(b)
                    .expect("VNS border router registered")
                    .request_refresh_all();
            }
        }
        internet.net.run(self.message_budget()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn override_table_semantics() {
        let mut o = Overrides::default();
        assert!(o.is_empty());
        o.exempt(p("10.0.0.0/8"));
        assert!(o.is_exempt(&p("10.0.0.0/8")));
        assert_eq!(o.len(), 1);
        // Forcing replaces exemption.
        o.force_exit(p("10.0.0.0/8"), PopId(7));
        assert!(!o.is_exempt(&p("10.0.0.0/8")));
        assert_eq!(o.forced_exit(&p("10.0.0.0/8")), Some(PopId(7)));
        // Exempting replaces forcing.
        o.exempt(p("10.0.0.0/8"));
        assert_eq!(o.forced_exit(&p("10.0.0.0/8")), None);
        o.clear(&p("10.0.0.0/8"));
        assert!(o.is_empty());
    }
}
