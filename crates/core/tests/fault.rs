//! The fault-injection subsystem: scripted cut/restore events must be
//! exactly undoable — after a restore and an incremental reconvergence the
//! control plane routes like nothing happened.

use vns_core::{
    build_vns, FaultError, FaultEvent, FaultInjector, FaultPlan, PopId, Vns, VnsConfig,
};
use vns_topo::{generate, Internet, TopoConfig};

fn world(seed: u64) -> (Internet, Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    (internet, vns)
}

fn routable_fraction(internet: &Internet, vns: &Vns, from: PopId) -> f64 {
    let mut ok = 0usize;
    let mut total = 0usize;
    for p in internet.prefixes().filter(|p| p.last_mile) {
        total += 1;
        if vns
            .path_via_vns(internet, from, p.prefix.first_host())
            .is_ok()
        {
            ok += 1;
        }
    }
    ok as f64 / total.max(1) as f64
}

#[test]
fn session_cut_and_restore_round_trips() {
    let (mut internet, vns) = world(7);
    let pop = &vns.pops()[0];
    let border = pop.borders[0];
    let (up_as, up_city) = vns.primary_upstream(pop.id());
    let upstream = internet.router_of(up_as, up_city).expect("upstream router");

    let mut inj = FaultInjector::new();
    inj.apply(
        &mut internet,
        &vns,
        FaultEvent::SessionCut {
            a: border,
            b: upstream,
        },
    )
    .expect("cut");
    internet.net.run(vns.message_budget()).expect("reconverge");
    assert!(internet.net.is_quiescent());
    assert!(!inj.fully_restored());

    inj.apply(
        &mut internet,
        &vns,
        FaultEvent::SessionRestore {
            a: border,
            b: upstream,
        },
    )
    .expect("restore");
    internet.net.run(vns.message_budget()).expect("reconverge");
    assert!(internet.net.is_quiescent());
    assert!(inj.fully_restored());
    let frac = routable_fraction(&internet, &vns, pop.id());
    assert!(frac > 0.999, "post-restore routable fraction: {frac}");
}

#[test]
fn reflector_blip_survives_and_recovers() {
    let (mut internet, vns) = world(81);
    let [rr0, _] = vns.reflectors();
    let plan = FaultPlan::router_blip("rr0-blip", rr0);
    let mut inj = FaultInjector::new();

    for (i, &step) in plan.steps.iter().enumerate() {
        inj.apply(&mut internet, &vns, step).expect("apply");
        internet.net.run(vns.message_budget()).expect("reconverge");
        assert!(internet.net.is_quiescent(), "step {i} left the net torn");
        // The surviving reflector keeps the AS routed even mid-plan.
        let frac = routable_fraction(&internet, &vns, PopId(10));
        assert!(frac > 0.999, "step {i}: routable fraction {frac}");
    }
    assert!(inj.fully_restored());
    assert_eq!(inj.dead_routers().count(), 0);
}

#[test]
fn router_down_marks_dead_until_up() {
    let (mut internet, vns) = world(3);
    let [rr0, _] = vns.reflectors();
    let mut inj = FaultInjector::new();
    inj.apply(&mut internet, &vns, FaultEvent::RouterDown { router: rr0 })
        .expect("down");
    assert_eq!(inj.dead_routers().collect::<Vec<_>>(), vec![rr0]);
    assert!(inj.severed_sessions().count() > 0);
    inj.apply(&mut internet, &vns, FaultEvent::RouterUp { router: rr0 })
        .expect("up");
    assert!(inj.fully_restored());
}

#[test]
fn circuit_cut_and_restore_round_trips() {
    let (mut internet, vns) = world(5);
    // Cut the intra-PoP link between the two borders of PoP 0: both stay
    // reachable via the cluster mesh, and the restore puts the cost back.
    let pop = &vns.pops()[0];
    let [b0, b1] = pop.borders;
    let mut inj = FaultInjector::new();
    inj.apply(&mut internet, &vns, FaultEvent::CircuitCut { a: b0, b: b1 })
        .expect("cut");
    internet.net.run(vns.message_budget()).expect("reconverge");
    assert!(internet.net.is_quiescent());
    inj.apply(
        &mut internet,
        &vns,
        FaultEvent::CircuitRestore { a: b0, b: b1 },
    )
    .expect("restore");
    internet.net.run(vns.message_budget()).expect("reconverge");
    assert!(inj.fully_restored());
    let frac = routable_fraction(&internet, &vns, pop.id());
    assert!(frac > 0.999, "post-restore routable fraction: {frac}");
}

#[test]
fn unknown_targets_are_rejected() {
    let (mut internet, vns) = world(11);
    let [rr0, rr1] = vns.reflectors();
    let bogus = vns_bgp::SpeakerId(u32::MAX);
    let mut inj = FaultInjector::new();
    assert_eq!(
        inj.apply(
            &mut internet,
            &vns,
            FaultEvent::RouterDown { router: bogus }
        ),
        Err(FaultError::UnknownRouter(bogus))
    );
    // Restoring a session never severed by this injector is an error, even
    // though the session exists.
    assert_eq!(
        inj.apply(
            &mut internet,
            &vns,
            FaultEvent::SessionRestore { a: rr0, b: rr1 }
        ),
        Err(FaultError::UnknownSession(rr0, rr1))
    );
    // No circuit between the two reflectors (they attach via borders).
    assert_eq!(
        inj.apply(
            &mut internet,
            &vns,
            FaultEvent::CircuitCut { a: rr0, b: rr1 }
        ),
        Err(FaultError::UnknownCircuit(rr0, rr1))
    );
}

#[test]
fn flap_plan_expands_to_alternating_steps() {
    let a = vns_bgp::SpeakerId(1);
    let b = vns_bgp::SpeakerId(2);
    let plan = FaultPlan::session_flap("flap", a, b, 3);
    assert_eq!(plan.steps.len(), 6);
    assert_eq!(plan.steps[0], FaultEvent::SessionCut { a, b });
    assert_eq!(plan.steps[1], FaultEvent::SessionRestore { a, b });
    assert_eq!(plan.steps[4], FaultEvent::SessionCut { a, b });
}
