//! Property tests for VNS components: the LOCAL_PREF function and the
//! override table.

use proptest::prelude::*;
use vns_core::{LocalPrefFn, Overrides, PopId};

fn lp_fn() -> impl Strategy<Value = LocalPrefFn> {
    prop_oneof![
        (200u32..5_000, 5.0f64..3_000.0)
            .prop_map(|(floor, band_km)| LocalPrefFn::BandedLinear { floor, band_km }),
        (200u32..5_000, 1.0e5f64..1.0e7)
            .prop_map(|(floor, scale)| LocalPrefFn::Inverse { floor, scale }),
        Just(LocalPrefFn::Stepped),
    ]
}

proptest! {
    #[test]
    fn lp_always_above_default(f in lp_fn(), d in -100.0f64..25_000.0) {
        prop_assert!(f.compute(d) > 100, "{f:?} at {d}");
    }

    #[test]
    fn lp_monotone_nonincreasing(f in lp_fn(), a in 0.0f64..20_000.0, b in 0.0f64..20_000.0) {
        let (near, far) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f.compute(near) >= f.compute(far), "{f:?}: {near} vs {far}");
    }

    #[test]
    fn overrides_are_mutually_exclusive(
        prefixes in prop::collection::vec((any::<u32>(), 8u8..=24), 1..40),
        ops in prop::collection::vec((0usize..40, 0u8..3, 1u8..=11), 1..120)
    ) {
        let ps: Vec<vns_bgp::Prefix> = prefixes
            .iter()
            .map(|(a, l)| vns_bgp::Prefix::new(*a, *l))
            .collect();
        let mut o = Overrides::default();
        for (idx, op, pop) in ops {
            let p = ps[idx % ps.len()];
            match op {
                0 => o.exempt(p),
                1 => o.force_exit(p, PopId(pop)),
                _ => o.clear(&p),
            }
            // Invariant: a prefix is never both exempt and forced.
            prop_assert!(!(o.is_exempt(&p) && o.forced_exit(&p).is_some()));
        }
    }
}
