//! Failure injection on the control plane: reflector redundancy ("in
//! reality multiple RRs are deployed to ensure operation stability",
//! paper Sec 3.2 fn. 1) and upstream-session failure.

use vns_core::{build_vns, PopId, RoutingMode, Vns, VnsConfig};
use vns_topo::{generate, Internet, TopoConfig};

fn world(seed: u64) -> (Internet, Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    (internet, vns)
}

fn routable_fraction(internet: &Internet, vns: &Vns, from: PopId) -> f64 {
    let mut ok = 0usize;
    let mut total = 0usize;
    for p in internet.prefixes().filter(|p| p.last_mile) {
        total += 1;
        if vns
            .path_via_vns(internet, from, p.prefix.first_host())
            .is_ok()
        {
            ok += 1;
        }
    }
    ok as f64 / total.max(1) as f64
}

#[test]
fn reflector_failure_is_survivable() {
    let (mut internet, vns) = world(81);
    assert!(routable_fraction(&internet, &vns, PopId(10)) > 0.999);

    // Kill route reflector 0: tear down every one of its iBGP sessions.
    let [rr0, _rr1] = vns.reflectors();
    let sessions: Vec<_> = internet
        .net
        .speaker(rr0)
        .expect("rr exists")
        .peer_ids()
        .collect();
    for peer in sessions {
        internet.net.disconnect(rr0, peer);
    }
    internet.net.run(vns.message_budget()).expect("reconverges");

    // The surviving reflector keeps the AS fully routed.
    let after = routable_fraction(&internet, &vns, PopId(10));
    assert!(after > 0.999, "after RR failure: {after}");

    // Geo routing still works: a European prefix still exits in Europe.
    let eu = internet
        .prefixes()
        .find(|p| {
            p.last_mile
                && vns_geo::city(p.city).region == vns_geo::Region::Europe
                && internet.geoip.error_km(p.prefix).unwrap_or(1e9) < 150.0
        })
        .expect("EU prefix");
    let egress = vns
        .egress_pop(&internet, PopId(1), eu.prefix.first_host())
        .expect("routed");
    assert_eq!(
        vns.pop(egress).spec.region,
        vns_geo::PopRegion::Eu,
        "geo routing survives the RR failure"
    );
}

#[test]
fn losing_both_reflectors_partitions_the_control_plane() {
    let (mut internet, vns) = world(82);
    for rr in vns.reflectors() {
        let sessions: Vec<_> = internet
            .net
            .speaker(rr)
            .expect("rr exists")
            .peer_ids()
            .collect();
        for peer in sessions {
            internet.net.disconnect(rr, peer);
        }
    }
    internet.net.run(vns.message_budget()).expect("reconverges");
    // Border routers keep only their own eBGP routes; cross-PoP iBGP
    // knowledge is gone, so remote-egress routing collapses but local
    // exits survive.
    let from = PopId(10);
    let mut local_only = true;
    let mut routed = 0;
    for p in internet.prefixes().filter(|p| p.last_mile).take(60) {
        if let Some(egress) = vns.egress_pop(&internet, from, p.prefix.first_host()) {
            routed += 1;
            if egress != from {
                local_only = false;
            }
        }
    }
    assert!(routed > 0, "local eBGP still works");
    assert!(
        local_only,
        "without reflectors no remote egress should be learnable"
    );
}

#[test]
fn upstream_session_failure_reroutes() {
    let (mut internet, vns) = world(83);
    let pop = PopId(9); // Amsterdam
    let border = vns.pop(pop).borders[0];
    // Tear down ALL of the border's eBGP transit sessions.
    let peers: Vec<_> = internet
        .net
        .speaker(border)
        .expect("border exists")
        .peer_ids()
        .filter(|p| internet.as_of_speaker(*p) != Some(vns.as_id()))
        .collect();
    assert!(!peers.is_empty());
    for p in peers {
        internet.net.disconnect(border, p);
    }
    internet.net.run(vns.message_budget()).expect("reconverges");
    // Everything stays reachable through the other PoPs' sessions.
    let frac = routable_fraction(&internet, &vns, pop);
    assert!(frac > 0.999, "after upstream failure: {frac}");
    // And the paths genuinely avoid the dead border for external legs.
    for p in internet.prefixes().filter(|p| p.last_mile).take(20) {
        let path = vns
            .path_via_vns(&internet, pop, p.prefix.first_host())
            .expect("rerouted");
        let egress_router = path
            .routers
            .iter()
            .rev()
            .find(|r| vns.pop_of_router(**r).is_some())
            .expect("has VNS egress");
        assert_ne!(*egress_router, border, "dead border must not be the egress");
    }
}

#[test]
fn before_mode_also_survives_rr_loss() {
    let mut internet = generate(&TopoConfig::tiny(84)).expect("generate");
    let vns = build_vns(
        &mut internet,
        &VnsConfig {
            mode: RoutingMode::HotPotato,
            ..VnsConfig::default()
        },
    )
    .expect("converge");
    let [_, rr1] = vns.reflectors();
    let sessions: Vec<_> = internet
        .net
        .speaker(rr1)
        .expect("rr exists")
        .peer_ids()
        .collect();
    for peer in sessions {
        internet.net.disconnect(rr1, peer);
    }
    internet.net.run(vns.message_budget()).expect("reconverges");
    assert!(routable_fraction(&internet, &vns, PopId(7)) > 0.999);
}
