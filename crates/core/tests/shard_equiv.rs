//! Differential property test: sharded delta convergence must produce the
//! same Loc-RIBs as the monolithic activation-queue engine.
//!
//! For safe (Gao–Rexford) policies the BGP fixpoint is unique, so the two
//! engines — which process messages in very different orders — must agree
//! exactly on every speaker's selected routes, for any seed, either routing
//! mode, and any worker-thread count. The monolithic engine survives as
//! the reference oracle behind the `monolithic_convergence` config knobs.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vns_core::{build_vns, RoutingMode, VnsConfig};
use vns_topo::{generate, TopoConfig};

/// Builds a full world (synthetic Internet + VNS overlay) and returns a
/// canonical Loc-RIB snapshot: `(speaker, prefix) -> rendered best route`.
fn world_ribs(
    seed: u64,
    mode: RoutingMode,
    monolithic: bool,
    threads: usize,
) -> BTreeMap<(vns_bgp::SpeakerId, vns_bgp::Prefix), String> {
    let topo = TopoConfig {
        monolithic_convergence: monolithic,
        convergence_threads: threads,
        ..TopoConfig::tiny(seed)
    };
    let mut internet = generate(&topo).expect("topology generation");
    let vns = VnsConfig {
        mode,
        seed,
        monolithic_convergence: monolithic,
        convergence_threads: threads,
        ..VnsConfig::default()
    };
    build_vns(&mut internet, &vns).expect("VNS convergence");

    let ids: Vec<_> = internet.net.speaker_ids().collect();
    let mut snap = BTreeMap::new();
    for id in ids {
        let sp = internet.net.speaker(id).expect("listed speaker");
        for prefix in sp.loc_rib_prefixes().collect::<Vec<_>>() {
            let best = sp.best(&prefix).expect("loc-rib entry has a best");
            snap.insert((id, prefix), format!("{:?}|{:?}", best.attrs, best.source));
        }
    }
    snap
}

proptest! {
    // Each case builds two complete worlds; keep the sample small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_delta_matches_monolithic_full_run(
        seed in 1u64..10_000,
        geo in any::<bool>(),
        threads in 1usize..4,
    ) {
        let mode = if geo {
            RoutingMode::GeoColdPotato
        } else {
            RoutingMode::HotPotato
        };
        let mono = world_ribs(seed, mode, true, 1);
        let shard = world_ribs(seed, mode, false, threads);
        prop_assert_eq!(mono, shard);
    }
}
