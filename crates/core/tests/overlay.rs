//! End-to-end tests of the VNS overlay over a generated Internet.

use vns_core::{build_vns, PopId, RoutingMode, Vns, VnsConfig};
use vns_geo::{PopRegion, Region};
use vns_topo::{generate, Internet, TopoConfig};

fn world(seed: u64, mode: RoutingMode) -> (Internet, Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("topology generates");
    let cfg = VnsConfig {
        mode,
        ..VnsConfig::default()
    };
    let vns = build_vns(&mut internet, &cfg).expect("overlay converges");
    (internet, vns)
}

#[test]
fn overlay_builds_and_converges() {
    let (internet, vns) = world(11, RoutingMode::GeoColdPotato);
    assert_eq!(vns.pops().len(), 11);
    assert!(vns.upstreams().len() >= 2);
    assert!(!vns.peers().is_empty(), "VNS should have IXP peers");
    // Every PoP's border router holds a route to every external prefix.
    let border = vns.pop(PopId(10)).borders[0];
    let speaker = internet.net.speaker(border).unwrap();
    let missing = internet
        .prefixes()
        .filter(|p| speaker.best(&p.prefix).is_none())
        .count();
    assert_eq!(missing, 0, "full table at the London border router");
}

#[test]
fn geo_mode_exits_at_geographically_close_pops() {
    let (internet, vns) = world(12, RoutingMode::GeoColdPotato);
    // For prefixes with clean GeoIP, the selected egress PoP should be
    // near the prefix: its distance to the prefix must be within a small
    // margin of the true nearest PoP's distance (coarse GeoIP jitter and
    // banding allow small displacements).
    let mut checked = 0;
    let mut good = 0;
    for pinfo in internet.prefixes() {
        if internet.geoip.error_km(pinfo.prefix).unwrap_or(1e9) > 150.0 {
            continue; // only judge on well-geolocated prefixes
        }
        let Some(egress) = vns.egress_pop(&internet, PopId(10), pinfo.prefix.first_host()) else {
            continue;
        };
        let d_sel = vns.pop(egress).location().distance_km(&pinfo.location);
        let nearest = vns.nearest_pop(pinfo.location);
        let d_best = vns.pop(nearest).location().distance_km(&pinfo.location);
        checked += 1;
        if d_sel <= d_best + 500.0 {
            good += 1;
        }
    }
    assert!(checked > 50, "checked {checked}");
    let frac = good as f64 / checked as f64;
    assert!(frac > 0.9, "geo egress precision {frac} ({good}/{checked})");
}

#[test]
fn hot_potato_mode_mostly_exits_locally() {
    let (internet, vns) = world(13, RoutingMode::HotPotato);
    let from = PopId(10);
    let mut local = 0;
    let mut total = 0;
    for pinfo in internet.prefixes() {
        if let Some(egress) = vns.egress_pop(&internet, from, pinfo.prefix.first_host()) {
            total += 1;
            if egress == from {
                local += 1;
            }
        }
    }
    let frac = local as f64 / total as f64;
    // The paper's Fig 4 shows ~70% local exit before geo-routing.
    assert!(
        frac > 0.5,
        "hot potato should exit mostly locally, got {frac}"
    );
}

#[test]
fn modes_actually_differ() {
    let (i_geo, v_geo) = world(14, RoutingMode::GeoColdPotato);
    let (i_hot, v_hot) = world(14, RoutingMode::HotPotato);
    let mut diff = 0;
    let mut total = 0;
    for pinfo in i_geo.prefixes() {
        let ip = pinfo.prefix.first_host();
        let a = v_geo.egress_pop(&i_geo, PopId(10), ip);
        let b = v_hot.egress_pop(&i_hot, PopId(10), ip);
        if a.is_some() && b.is_some() {
            total += 1;
            if a != b {
                diff += 1;
            }
        }
    }
    assert!(
        diff as f64 / total as f64 > 0.2,
        "geo routing should change many egress choices ({diff}/{total})"
    );
}

#[test]
fn anycast_follows_geography() {
    let (internet, vns) = world(15, RoutingMode::GeoColdPotato);
    // Requests from each world region should mostly land in the home PoP
    // region (Fig 7).
    let mut match_count = 0;
    let mut total = 0;
    for pinfo in internet.prefixes() {
        let region = vns_geo::city(pinfo.city).region;
        let Ok((pop, _)) = vns.anycast_landing(&internet, pinfo.prefix.first_host()) else {
            continue;
        };
        total += 1;
        if vns.pop(pop).spec.region == region.home_pop_region() {
            match_count += 1;
        }
    }
    assert!(total > 100, "landed {total}");
    let frac = match_count as f64 / total as f64;
    assert!(
        frac > 0.5,
        "incoming traffic should follow geography to a large extent, got {frac}"
    );
}

#[test]
fn vns_internal_path_uses_dedicated_links() {
    let (internet, vns) = world(16, RoutingMode::GeoColdPotato);
    // AMS -> Singapore echo server must ride dedicated hops only.
    let sin_echo = vns
        .echo_servers()
        .iter()
        .find(|e| e.pop == PopId(7))
        .unwrap();
    let path = vns
        .path_via_vns(&internet, PopId(9), sin_echo.address())
        .expect("path resolves");
    assert!(!path.hops.is_empty());
    for hop in &path.hops {
        match hop.kind {
            vns_topo::HopKind::IntraAs { dedicated, .. } => {
                assert!(dedicated, "hop {} must be dedicated", hop.label);
            }
            other => panic!("unexpected hop kind {other:?} on internal path"),
        }
    }
    // The AMS->SIN leg is a direct circuit (Sec 4.3): roughly the
    // great-circle AMS-SIN, not a detour via the US.
    let km = path.total_km();
    assert!((8_000.0..13_000.0).contains(&km), "AMS->SIN km {km}");
}

#[test]
fn upstream_path_leaves_immediately() {
    let (internet, vns) = world(17, RoutingMode::GeoColdPotato);
    let target = internet.prefixes().next().unwrap().prefix.first_host();
    let path = vns
        .path_via_upstream(&internet, PopId(9), target)
        .expect("path resolves");
    // First hop is the transit port; no dedicated VNS hops at all.
    let dedicated = path
        .hops
        .iter()
        .filter(|h| {
            matches!(
                h.kind,
                vns_topo::HopKind::IntraAs {
                    dedicated: true,
                    ..
                }
            )
        })
        .count();
    assert_eq!(dedicated, 0, "upstream path must bypass VNS circuits");
}

#[test]
fn london_upstream_backhauls_to_us() {
    let (internet, vns) = world(18, RoutingMode::GeoColdPotato);
    let (_, entry_city) = vns.primary_upstream(PopId(10));
    assert_eq!(
        vns_geo::city(entry_city).name,
        "Ashburn",
        "the Fig 11 London misconfiguration"
    );
    // Path from London via upstream to an EU prefix crosses the Atlantic
    // twice: total length far exceeds the direct distance.
    let eu_prefix = internet
        .prefixes()
        .find(|p| vns_geo::city(p.city).region == Region::Europe && p.last_mile)
        .unwrap();
    let lon = vns.pop(PopId(10)).location();
    let direct = lon.distance_km(&eu_prefix.location);
    let path = vns
        .path_via_upstream(&internet, PopId(10), eu_prefix.prefix.first_host())
        .unwrap();
    assert!(
        path.total_km() > direct + 8_000.0,
        "double Atlantic crossing expected: path {} km vs direct {} km",
        path.total_km(),
        direct
    );
}

#[test]
fn management_force_exit_and_exempt() {
    let (mut internet, vns) = world(19, RoutingMode::GeoColdPotato);
    // Pick a European prefix currently exiting in the EU, then force it
    // through Singapore.
    let pinfo = internet
        .prefixes()
        .find(|p| {
            vns_geo::city(p.city).region == Region::Europe
                && p.last_mile
                && internet.geoip.error_km(p.prefix).unwrap_or(1e9) < 150.0
        })
        .map(|p| (p.prefix, p.prefix.first_host()))
        .unwrap();
    let (prefix, ip) = pinfo;
    let before = vns.egress_pop(&internet, PopId(10), ip).unwrap();
    assert_eq!(
        vns.pop(before).spec.region,
        PopRegion::Eu,
        "sanity: EU prefix exits in EU"
    );
    vns.mgmt_force_exit(&mut internet, prefix, PopId(7))
        .expect("reconverges");
    let forced = vns.egress_pop(&internet, PopId(10), ip).unwrap();
    assert_eq!(forced, PopId(7), "forced exit via Singapore");
    // Clearing restores geography.
    vns.mgmt_clear(&mut internet, prefix).expect("reconverges");
    let after = vns.egress_pop(&internet, PopId(10), ip).unwrap();
    assert_eq!(vns.pop(after).spec.region, PopRegion::Eu);
    // Exempting falls back to default BGP (egress may or may not change,
    // but the override table must reflect it and reconvergence succeed).
    vns.mgmt_exempt(&mut internet, prefix).expect("reconverges");
    assert!(vns.overrides().read().unwrap().is_exempt(&prefix));
}

#[test]
fn management_more_specific_steers_within_vns() {
    let (mut internet, vns) = world(20, RoutingMode::GeoColdPotato);
    // Take a European /16 and steer one /18 of it via Hong Kong (as if
    // that subnet were actually in Asia).
    let parent = internet
        .prefixes()
        .find(|p| vns_geo::city(p.city).region == Region::Europe && p.last_mile)
        .map(|p| p.prefix)
        .unwrap();
    let sub = parent.subnet(18, 1);
    let ip_in_sub = sub.first_host();
    let before = vns.egress_pop(&internet, PopId(10), ip_in_sub).unwrap();
    assert_eq!(vns.pop(before).spec.region, PopRegion::Eu);
    vns.mgmt_inject_more_specific(&mut internet, sub, PopId(8))
        .expect("reconverges");
    // Inside VNS, the more-specific wins and steers to HKG.
    let after = vns.egress_pop(&internet, PopId(10), ip_in_sub).unwrap();
    assert_eq!(after, PopId(8), "steered via the injected more-specific");
    // Addresses outside the injected subnet keep their old egress.
    let other_ip = parent.subnet(18, 0).first_host();
    let other = vns.egress_pop(&internet, PopId(10), other_ip).unwrap();
    assert_eq!(vns.pop(other).spec.region, PopRegion::Eu);
    // The more-specific must NOT leak to the Internet (NO_EXPORT): no
    // external speaker may hold a route for it.
    let leaked = internet
        .ases()
        .filter_map(|a| a.speaker)
        .filter_map(|sp| internet.net.speaker(sp))
        .filter(|s| s.best(&sub).is_some())
        .count();
    assert_eq!(leaked, 0, "NO_EXPORT must contain the more-specific");
    // Data plane: the path from London enters VNS, rides to HKG, and only
    // then exits to the Internet.
    let path = vns.path_via_vns(&internet, PopId(10), ip_in_sub).unwrap();
    let hkg_border = vns.pop(PopId(8)).borders;
    assert!(
        path.routers.iter().any(|r| hkg_border.contains(r)),
        "path must traverse HKG: {:?}",
        path.routers
    );
}

#[test]
fn best_external_prevents_hidden_routes() {
    // Build the same world with and without best-external; with it off,
    // geo-routing converges onto fewer distinct egress choices because
    // borders hide their eBGP routes once an iBGP route wins.
    let build = |best_external: bool| {
        let mut internet = generate(&TopoConfig::tiny(21)).unwrap();
        let cfg = VnsConfig {
            best_external,
            ..VnsConfig::default()
        };
        let vns = build_vns(&mut internet, &cfg).unwrap();
        (internet, vns)
    };
    let (i_on, v_on) = build(true);
    let (i_off, v_off) = build(false);
    // Measure geo precision in both: fraction of clean prefixes whose
    // egress is (near-)optimal.
    let precision = |internet: &Internet, vns: &Vns| {
        let mut good = 0;
        let mut total = 0;
        for pinfo in internet.prefixes() {
            if internet.geoip.error_km(pinfo.prefix).unwrap_or(1e9) > 150.0 {
                continue;
            }
            let Some(egress) = vns.egress_pop(internet, PopId(10), pinfo.prefix.first_host())
            else {
                continue;
            };
            let d_sel = vns.pop(egress).location().distance_km(&pinfo.location);
            let nearest = vns.nearest_pop(pinfo.location);
            let d_best = vns.pop(nearest).location().distance_km(&pinfo.location);
            total += 1;
            if d_sel <= d_best + 500.0 {
                good += 1;
            }
        }
        good as f64 / total.max(1) as f64
    };
    let p_on = precision(&i_on, &v_on);
    let p_off = precision(&i_off, &v_off);
    assert!(
        p_on >= p_off,
        "best-external must not hurt precision: on {p_on} off {p_off}"
    );
}

#[test]
fn deterministic_worlds() {
    let (i1, v1) = world(22, RoutingMode::GeoColdPotato);
    let (i2, v2) = world(22, RoutingMode::GeoColdPotato);
    for pinfo in i1.prefixes().take(50) {
        let ip = pinfo.prefix.first_host();
        assert_eq!(
            v1.egress_pop(&i1, PopId(9), ip),
            v2.egress_pop(&i2, PopId(9), ip)
        );
    }
}
