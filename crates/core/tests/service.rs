//! Service-API tests: local-exit semantics, upstream ports, relay
//! composition.

use vns_core::{build_vns, PopId, Vns, VnsConfig};
use vns_topo::{generate, HopKind, Internet, TopoConfig};

fn world(seed: u64) -> (Internet, Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    (internet, vns)
}

#[test]
fn local_exit_never_uses_vns_circuits() {
    let (internet, vns) = world(71);
    let mut checked = 0;
    for p in internet.prefixes().filter(|p| p.last_mile).step_by(3) {
        for pop in [PopId(9), PopId(1), PopId(7)] {
            let Ok(path) = vns.path_via_local_exit(&internet, pop, p.prefix.first_host()) else {
                continue;
            };
            checked += 1;
            assert!(
                !path.hops.iter().any(|h| matches!(
                    h.kind,
                    HopKind::IntraAs {
                        dedicated: true,
                        ..
                    }
                )),
                "local exit must not ride VNS circuits: {:?}",
                path.hops.iter().map(|h| &h.label).collect::<Vec<_>>()
            );
            // The first hop leaves from the PoP's own city.
            assert_eq!(path.hops[0].from_city, vns.pop(pop).city);
        }
    }
    assert!(checked > 100, "checked {checked}");
}

#[test]
fn local_exit_prefers_short_paths_over_the_primary_port() {
    // For destinations with a local peer route, the local exit must not be
    // longer than the primary-upstream exit.
    let (internet, vns) = world(72);
    let mut shorter_or_equal = 0;
    let mut total = 0;
    for p in internet.prefixes().filter(|p| p.last_mile).step_by(4) {
        let ip = p.prefix.first_host();
        let (Ok(local), Ok(upstream)) = (
            vns.path_via_local_exit(&internet, PopId(9), ip),
            vns.path_via_upstream(&internet, PopId(9), ip),
        ) else {
            continue;
        };
        total += 1;
        if local.total_km() <= upstream.total_km() + 1.0 {
            shorter_or_equal += 1;
        }
    }
    assert!(total > 20);
    assert!(
        shorter_or_equal as f64 / total as f64 > 0.7,
        "local exit should usually be at least as direct ({shorter_or_equal}/{total})"
    );
}

#[test]
fn every_pop_has_an_upstream_port() {
    let (internet, vns) = world(73);
    for pop in vns.pops() {
        let (as_id, entry_city) = vns.primary_upstream(pop.id());
        let info = internet.as_info(as_id);
        assert_eq!(info.ty, vns_topo::AsType::Ltp, "upstreams are Tier-1s");
        // The port city is real and the upstream has a router near it.
        assert!(internet.router_of(as_id, entry_city).is_some());
    }
    // London's port is the misconfigured Ashburn one.
    let (_, lon_port) = vns.primary_upstream(PopId(10));
    assert_eq!(vns_geo::city(lon_port).name, "Ashburn");
}

#[test]
fn media_path_enters_at_the_anycast_pop() {
    let (internet, vns) = world(74);
    let prefixes: Vec<u32> = internet
        .prefixes()
        .filter(|p| p.last_mile)
        .map(|p| p.prefix.first_host())
        .collect();
    for (i, &caller) in prefixes.iter().enumerate().step_by(9).take(8) {
        let callee = prefixes[(i + 17) % prefixes.len()];
        let (ingress, _) = vns.anycast_landing(&internet, caller).expect("lands");
        let media = vns.media_path(&internet, caller, callee).expect("resolves");
        // The first VNS router on the media path belongs to the ingress PoP.
        let first_vns = media
            .routers
            .iter()
            .find_map(|r| vns.pop_of_router(*r))
            .expect("path enters VNS");
        assert_eq!(first_vns, ingress);
    }
}

#[test]
fn exit_neighbor_is_a_real_session() {
    let (internet, vns) = world(75);
    let mut checked = 0;
    for p in internet.prefixes().filter(|p| p.last_mile).step_by(5) {
        let Some(asn) = vns.exit_neighbor(&internet, PopId(4), p.prefix.first_host()) else {
            continue;
        };
        let info = internet.as_by_asn(asn).expect("neighbour AS exists");
        // It must be an upstream or a configured peer.
        let known = vns.upstreams().contains(&info.id) || vns.peers().contains(&info.id);
        assert!(known, "exit neighbour {asn} is neither upstream nor peer");
        checked += 1;
    }
    assert!(checked >= 25, "checked {checked}");
}

#[test]
fn spill_order_is_distance_sorted_and_complete() {
    let (_, vns) = world(77);
    for pop in vns.pops() {
        let order = vns.spill_order(pop.id());
        assert_eq!(order.len(), vns.pops().len() - 1);
        assert!(!order.contains(&pop.id()), "never spills to itself");
        let origin = pop.location();
        let dists: Vec<f64> = order
            .iter()
            .map(|&id| origin.distance_km(&vns.pop(id).location()))
            .collect();
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1]),
            "{} spill order not sorted: {dists:?}",
            pop.code()
        );
    }
    // Amsterdam's first spill choices are the nearby EU PoPs, not AP/OC.
    let first3 = &vns.spill_order(PopId(9))[..3];
    for id in first3 {
        assert_eq!(
            vns.pop(*id).spec.cluster,
            vns_core::ClusterId::Eu,
            "AMS should spill within Europe first"
        );
    }
}

#[test]
fn capacity_apportionment_conserves_and_floors() {
    let (_, vns) = world(78);
    let caps = vns.apportion_capacity(100_000);
    assert_eq!(caps.len(), vns.pops().len());
    assert_eq!(caps.iter().map(|(_, c)| c).sum::<u64>(), 100_000);
    for (id, cap) in &caps {
        assert!(*cap > 0, "{id} got zero capacity");
    }
    // Proportional to relay units: AMS (3 units) gets ~3x OSL (1 unit).
    let cap_of = |code: &str| {
        let id = vns.pop_by_code(code).unwrap().id();
        caps.iter().find(|(i, _)| *i == id).unwrap().1
    };
    let (ams, osl) = (cap_of("AMS"), cap_of("OSL"));
    assert!(
        (ams as f64 / osl as f64 - 3.0).abs() < 0.1,
        "AMS {ams} vs OSL {osl}"
    );
    // Tiny budgets still give every PoP at least one slot.
    let tiny = vns.apportion_capacity(3);
    assert!(tiny.iter().all(|(_, c)| *c >= 1));
}

#[test]
fn pop_lookup_helpers() {
    let (_, vns) = world(76);
    assert_eq!(vns.pop_by_code("AMS").unwrap().id(), PopId(9));
    assert!(vns.pop_by_code("XXX").is_none());
    let ams = vns.pop(PopId(9));
    assert_eq!(vns.nearest_pop(ams.location()), PopId(9));
    for pop in vns.pops() {
        for b in pop.borders {
            assert_eq!(vns.pop_of_router(b), Some(pop.id()));
        }
    }
    for rr in vns.reflectors() {
        assert_eq!(
            vns.pop_of_router(rr),
            None,
            "reflectors sit outside PoP data plane"
        );
    }
}
