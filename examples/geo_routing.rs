//! Geo-based cold-potato routing in action, plus the management interface.
//!
//! ```sh
//! cargo run --release --example geo_routing
//! ```
//!
//! Builds the same Internet twice — once with default hot-potato BGP, once
//! with the geo route reflector — and shows, from London's perspective,
//! how egress selection changes for destinations around the world. Then
//! demonstrates the three management overrides of Sec 3.2: forcing an
//! exit, exempting a badly geolocated prefix, and injecting a NO_EXPORT
//! more-specific.

use vns::core::{build_vns, PopId, RoutingMode, VnsConfig};
use vns::topo::{generate, TopoConfig};

fn main() {
    let topo = TopoConfig::default();
    let viewpoint = PopId(10); // London

    println!("Building the 'before' world (hot potato)...");
    let mut before_net = generate(&topo).expect("generate");
    let before = build_vns(&mut before_net, &VnsConfig::default().before()).expect("converge");

    println!("Building the 'after' world (geo cold potato)...");
    let mut after_net = generate(&topo).expect("generate");
    let after = build_vns(&mut after_net, &VnsConfig::default()).expect("converge");

    println!("\nEgress PoP from London for sample prefixes:");
    println!(
        "{:<18} {:<14} {:>10} {:>10}",
        "prefix", "located", "before", "after"
    );
    for p in after_net
        .prefixes()
        .filter(|p| p.last_mile)
        .step_by(23)
        .take(14)
    {
        let ip = p.prefix.first_host();
        let b = before
            .egress_pop(&before_net, viewpoint, ip)
            .map_or("-", |e| before.pop(e).code());
        let a = after
            .egress_pop(&after_net, viewpoint, ip)
            .map_or("-", |e| after.pop(e).code());
        println!(
            "{:<18} {:<14} {:>10} {:>10}",
            p.prefix.to_string(),
            vns::geo::city(p.city).name,
            b,
            a
        );
    }

    // Local-exit shares.
    let share = |vns: &vns::core::Vns, net: &vns::topo::Internet| {
        let mut local = 0;
        let mut total = 0;
        for p in net.prefixes().filter(|p| p.last_mile) {
            if let Some(e) = vns.egress_pop(net, viewpoint, p.prefix.first_host()) {
                total += 1;
                if e == viewpoint {
                    local += 1;
                }
            }
        }
        100.0 * local as f64 / total as f64
    };
    println!(
        "\nLondon exits locally for {:.0}% of routes before, {:.0}% after (paper: ~70% -> spread)",
        share(&before, &before_net),
        share(&after, &after_net)
    );

    // --- Management interface demo ---------------------------------------
    let victim = after_net
        .prefixes()
        .find(|p| p.last_mile && vns::geo::city(p.city).region == vns::geo::Region::Europe)
        .map(|p| p.prefix)
        .expect("a European prefix");
    let ip = victim.first_host();
    println!("\nManagement interface on {victim}:");
    let show = |net: &vns::topo::Internet, label: &str| {
        let e = after
            .egress_pop(net, viewpoint, ip)
            .expect("egress resolves");
        println!("  {label}: exits at {}", after.pop(e).code());
    };
    show(&after_net, "geo default     ");
    after
        .mgmt_force_exit(&mut after_net, victim, PopId(7))
        .expect("reconverges");
    show(&after_net, "forced to SIN   ");
    after
        .mgmt_exempt(&mut after_net, victim)
        .expect("reconverges");
    show(&after_net, "exempted        ");
    after
        .mgmt_clear(&mut after_net, victim)
        .expect("reconverges");
    show(&after_net, "cleared         ");

    // Steer one /18 of it via Hong Kong without leaking the route.
    let sub = victim.subnet(18, 2);
    after
        .mgmt_inject_more_specific(&mut after_net, sub, PopId(8))
        .expect("reconverges");
    let e = after
        .egress_pop(&after_net, viewpoint, sub.first_host())
        .expect("egress resolves");
    println!(
        "  injected {} at HKG: that subnet now exits at {} (NO_EXPORT keeps it inside VNS)",
        sub,
        after.pop(e).code()
    );
    let _ = RoutingMode::HotPotato;
}
