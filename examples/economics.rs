//! The Sec 6 economics analysis as a runnable scenario: what does running
//! VNS cost, where does the money go, and does cold-potato routing pay for
//! the circuits?
//!
//! ```sh
//! cargo run --release --example economics
//! ```

use vns::core::economics::{analyze, sample_demands, CostModel};
use vns::core::{build_vns, RoutingMode, VnsConfig};
use vns::topo::{generate, TopoConfig};

fn main() {
    println!("Building the world twice (geo cold potato / hot potato)...");
    let topo = TopoConfig::default();
    let mut net_geo = generate(&topo).expect("generate");
    let vns_geo = build_vns(&mut net_geo, &VnsConfig::default()).expect("converge");
    let mut net_hot = generate(&topo).expect("generate");
    let vns_hot = build_vns(
        &mut net_hot,
        &VnsConfig {
            mode: RoutingMode::HotPotato,
            ..VnsConfig::default()
        },
    )
    .expect("converge");

    let model = CostModel::default();
    println!(
        "\npricing: transit {} /Mbps (scale discount {}), L2 at {}x transit with {} Mbps commits",
        model.transit_per_mbps_base,
        model.transit_scale_discount,
        model.l2_price_factor,
        model.l2_commit_mbps
    );

    println!(
        "\n{:>8} {:>12} {:>10} {:>10} {:>10} {:>14} {:>14}",
        "calls", "routed Mbps", "fixed", "L2 bill", "transit", "cost/Mbps", "L2 util geo/hot"
    );
    for n in [100usize, 400, 1600, 6400] {
        let demands = sample_demands(&net_geo, n, 4.0, 7);
        let cb = analyze(&vns_geo, &net_geo, &model, &demands);
        let demands_hot = sample_demands(&net_hot, n, 4.0, 7);
        let cb_hot = analyze(&vns_hot, &net_hot, &model, &demands_hot);
        println!(
            "{:>8} {:>12.0} {:>10.0} {:>10.0} {:>10.0} {:>14.2} {:>7.0}%/{:>4.0}%",
            n,
            cb.routed_mbps,
            cb.fixed,
            cb.l2,
            cb.transit,
            cb.per_mbps(),
            100.0 * cb.l2_commit_utilization,
            100.0 * cb_hot.l2_commit_utilization,
        );
    }

    // Which circuits earn their keep?
    let demands = sample_demands(&net_geo, 1600, 4.0, 7);
    let cb = analyze(&vns_geo, &net_geo, &model, &demands);
    println!("\nbusiest dedicated circuits at 1600 calls:");
    let mut by_pop: std::collections::BTreeMap<(String, String), f64> = Default::default();
    for ((a, b), mbps) in &cb.l2_load {
        let name = |r| {
            vns_geo
                .pop_of_router(r)
                .map_or_else(|| "?".into(), |p| vns_geo.pop(p).code().to_string())
        };
        let (x, y) = (name(*a), name(*b));
        if x == y {
            continue; // intra-PoP patch
        }
        let key = if x < y { (x, y) } else { (y, x) };
        *by_pop.entry(key).or_default() += mbps;
    }
    let mut loads: Vec<_> = by_pop.into_iter().collect();
    loads.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for ((a, b), mbps) in loads.into_iter().take(8) {
        println!("  {a:>4} <-> {b:<4} {mbps:>8.0} Mbps");
    }
    println!(
        "\n(the paper, Sec 6: the L2 circuits are the dominant growing cost, and cold-potato\n\
         routing is what fills their minimum commits — the routing policy is the business model)"
    );
}
