//! The paper's Sec 5.1 experiment in miniature: HD echo sessions through
//! VNS vs through upstream transit, with loss, slot and jitter metrics.
//!
//! ```sh
//! cargo run --release --example video_call
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns::core::{build_vns, PopId, VnsConfig};
use vns::media::{run_echo_session, SessionConfig, VideoSpec};
use vns::netsim::{Dur, RngTree, SimTime};
use vns::topo::{generate, CalibrationConfig, ChannelFactory, TopoConfig};

fn main() {
    println!("Building the world...");
    let mut internet = generate(&TopoConfig::default()).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    let factory = ChannelFactory::new(
        CalibrationConfig::default(),
        RngTree::new(99).subtree("channels"),
    );

    let client = PopId(9); // Amsterdam, like the paper's Fig 10 view
    let cfg = SessionConfig::default();
    let mut rng = SmallRng::seed_from_u64(7);

    println!(
        "\nClient at {} streaming 2-minute 1080p to every echo server, both ways:",
        vns.pop(client).code()
    );
    println!(
        "{:<6} {:<9} {:>10} {:>10} {:>12} {:>10}",
        "echo", "via", "loss %", "slots", "jitter ms", "min RTT"
    );
    for echo in vns.echo_servers().to_vec() {
        for via_vns in [true, false] {
            let path = if via_vns {
                vns.path_via_vns(&internet, client, echo.address())
            } else {
                vns.path_via_upstream(&internet, client, echo.address())
            }
            .expect("path resolves");
            let label = format!("ex:{}:{}", echo.prefix, via_vns);
            let mut fwd = factory.channel(&path, &label);
            let mut rev = factory.channel(&path.reversed(), &format!("{label}:r"));
            // Stream 8 sessions across the day and aggregate.
            let mut worst = None;
            let mut total_sent = 0u32;
            let mut total_returned = 0u32;
            let mut max_jitter: f64 = 0.0;
            let mut min_rtt = f64::INFINITY;
            let mut lossy_slots = 0usize;
            for s in 0..8u64 {
                let t0 = SimTime::EPOCH + Dur::from_hours(3 * s);
                let sched = VideoSpec::HD1080.schedule(t0, cfg.duration, &mut rng);
                let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
                total_sent += r.sent;
                total_returned += r.returned;
                max_jitter = max_jitter.max(r.jitter_max_ms);
                lossy_slots += r.lossy_slots();
                if let Some(rtt) = r.min_rtt_ms {
                    min_rtt = min_rtt.min(rtt);
                }
                let loss = r.rt_loss_pct();
                if worst.is_none_or(|w: f64| loss > w) {
                    worst = Some(loss);
                }
            }
            let loss_pct = 100.0 * f64::from(total_sent - total_returned) / f64::from(total_sent);
            println!(
                "{:<6} {:<9} {:>9.3}% {:>10} {:>12.2} {:>8.1}ms",
                vns.pop(echo.pop).code(),
                if via_vns { "VNS" } else { "transit" },
                loss_pct,
                lossy_slots,
                max_jitter,
                min_rtt
            );
        }
    }
    println!("\n(the paper's rule of thumb: users start complaining above 0.15% loss)");
}
