//! Quickstart: build a world, deploy VNS, and relay one video call.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Two video users — an enterprise in Europe and one in Asia-Pacific —
//! set up a call through VNS's anycast TURN relays. We print where each
//! user's traffic enters the overlay, the dedicated circuits it rides,
//! and compare the relayed media path against the raw Internet path.

use vns::core::{build_vns, VnsConfig};
use vns::geo::Region;
use vns::topo::path::resolve_from_prefix;
use vns::topo::{generate, AsType, HopKind, TopoConfig};

fn main() {
    println!("Generating a synthetic Internet (~180 ASes)...");
    let mut internet = generate(&TopoConfig::default()).expect("topology generates");
    println!(
        "  {} ASes, {} prefixes",
        internet.as_count(),
        internet.prefixes().count()
    );

    println!("Deploying VNS (11 PoPs, geo cold-potato routing)...");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("overlay converges");
    println!(
        "  {} PoPs, {} upstream providers, {} IXP peers, anycast relay at {}",
        vns.pops().len(),
        vns.upstreams().len(),
        vns.peers().len(),
        vns.anycast_prefix()
    );

    // Pick a caller in Europe and a callee in Asia-Pacific — enterprises
    // with decent local connectivity (the paper's premise: the last mile
    // is short and "good enough"; VNS fixes the long haul).
    let pick = |region: Region| {
        internet
            .prefixes()
            .filter(|p| {
                p.last_mile
                    && vns::geo::city(p.city).region == region
                    && internet.as_info(p.origin).ty == AsType::Ec
            })
            .min_by(|a, b| {
                let d = |p: &&vns::topo::PrefixInfo| {
                    vns.pops()
                        .iter()
                        .map(|pop| pop.location().distance_km(&p.location))
                        .fold(f64::INFINITY, f64::min)
                };
                d(a).partial_cmp(&d(b)).expect("finite")
            })
            .expect("an enterprise prefix exists")
    };
    let caller = pick(Region::Europe);
    let callee = pick(Region::AsiaPacific);
    println!(
        "\nCall: {} ({}) -> {} ({})",
        caller.prefix,
        vns::geo::city(caller.city).name,
        callee.prefix,
        vns::geo::city(callee.city).name
    );

    // Where does the caller's traffic enter VNS? (anycast TURN relay)
    let (ingress, _) = vns
        .anycast_landing(&internet, caller.prefix.first_host())
        .expect("relay reachable");
    println!(
        "caller's relay request lands at PoP {}",
        vns.pop(ingress).code()
    );

    // The relayed media path.
    let relayed = vns
        .media_path(
            &internet,
            caller.prefix.first_host(),
            callee.prefix.first_host(),
        )
        .expect("media path resolves");
    println!("\nrelayed media path ({:.0} km):", relayed.total_km());
    for hop in &relayed.hops {
        let tag = match hop.kind {
            HopKind::IntraAs {
                dedicated: true, ..
            } => "VNS circuit",
            HopKind::IntraAs { .. } => "shared haul",
            HopKind::InterAs { .. } => "interconnect",
            HopKind::LastMile { .. } => "last mile",
        };
        println!("  {:>12}  {:>7.0} km  {}", tag, hop.km, hop.label);
    }

    // The raw Internet path for comparison — and an actual one-minute HD
    // stream over both, which is the paper's headline metric.
    let direct = resolve_from_prefix(
        &internet,
        caller.prefix.first_host(),
        callee.prefix.first_host(),
    )
    .expect("direct path resolves");

    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vns::media::{run_echo_session, SessionConfig, VideoSpec};
    use vns::netsim::{Dur, RngTree, SimTime};
    use vns::topo::{CalibrationConfig, ChannelFactory};
    let factory = ChannelFactory::new(
        CalibrationConfig::default(),
        RngTree::new(1).subtree("channels"),
    );
    let cfg = SessionConfig {
        duration: Dur::from_secs(120),
        ..SessionConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(3);
    println!("\nstreaming 2 minutes of 1080p over each path, 8 sessions across a day:");
    for (name, path) in [("direct Internet", &direct), ("via VNS relays", &relayed)] {
        let mut fwd = factory.channel(path, name);
        let mut rev = factory.channel(&path.reversed(), &format!("{name}:r"));
        let mut sent = 0u32;
        let mut returned = 0u32;
        for s in 0..8u64 {
            let sched = VideoSpec::HD1080.schedule(
                SimTime::EPOCH + Dur::from_hours(3 * s),
                cfg.duration,
                &mut rng,
            );
            let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
            sent += r.sent;
            returned += r.returned;
        }
        println!(
            "  {:>16}: {:.3}% loss",
            name,
            100.0 * f64::from(sent - returned) / f64::from(sent)
        );
    }
    println!(
        "(the paper: users complain above 0.15% — VNS keeps the long haul on dedicated circuits)"
    );
}
