//! Sec 5.2 in miniature: last-mile loss by AS type, region and hour.
//!
//! ```sh
//! cargo run --release --example last_mile
//! ```
//!
//! Probes a handful of hosts per AS type in each region with the paper's
//! 100-packet back-to-back trains from three vantage PoPs, and prints the
//! average loss plus the diurnal profile of lossy rounds.

use vns::core::{build_vns, PopId, VnsConfig};
use vns::geo::Region;
use vns::netsim::{Dur, RngTree, SimTime};
use vns::probe::{loss_train, rounds, TrainSummary};
use vns::topo::{generate, AsType, CalibrationConfig, ChannelFactory, TopoConfig};

fn main() {
    println!("Building the world...");
    let mut internet = generate(&TopoConfig::default()).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    let factory = ChannelFactory::new(
        CalibrationConfig::default(),
        RngTree::new(5).subtree("channels"),
    );

    let vantages = [PopId(9), PopId(1), PopId(7)]; // AMS, SJS, SIN
    let schedule = rounds(SimTime::EPOCH, Dur::from_mins(60), Dur::from_days(1));

    for &vp in &vantages {
        println!(
            "\nfrom {} (average loss over a day, 100-packet trains):",
            vns.pop(vp).code()
        );
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8}",
            "region", "LTP", "STP", "CAHP", "EC"
        );
        for region in [Region::Europe, Region::NorthAmerica, Region::AsiaPacific] {
            let mut row = format!("{:<8}", region.code());
            for ty in AsType::ALL {
                let hosts: Vec<u32> = internet
                    .prefixes()
                    .filter(|p| {
                        p.last_mile
                            && vns::geo::city(p.city).region == region
                            && internet.as_info(p.origin).ty == ty
                    })
                    .take(4)
                    .map(|p| p.prefix.first_host())
                    .collect();
                let mut summary = TrainSummary::default();
                for ip in hosts {
                    let Ok(path) = vns.path_via_local_exit(&internet, vp, ip) else {
                        continue;
                    };
                    let label = format!("lm:{}:{}", vp.0, ip);
                    let mut fwd = factory.channel(&path, &label);
                    let mut rev = factory.channel(&path.reversed(), &format!("{label}:r"));
                    for &t in &schedule {
                        summary.add(&loss_train(&mut fwd, &mut rev, t, 100));
                    }
                }
                row.push_str(&format!(" {:>7.2}%", 100.0 * summary.avg_loss_frac()));
            }
            println!("{row}");
        }
    }
    println!(
        "\n(compare with the paper's Table 1: CAHP > EC > STP > LTP in AP and EU, flat in NA)"
    );
}
